"""The serving invariant, asserted at the :class:`SweepService` layer.

The claims that make a query service *safe* to put in front of the
result store:

1. **Bit-identity** — a served response's output is byte-identical to
   the equivalent ``scenario run``, cold store or warm, whatever
   backend the server resolved.
2. **Warm requests never compute** — a request whose tasks are all in
   the store is answered with zero backend submissions (asserted both
   via the per-job miss counter and a counting backend).
3. **Degradation, not corruption** — a store entry corrupted between
   requests is recomputed (warned, quarantined) and the response still
   matches the reference bit-for-bit; a failing job reports its error
   and the worker keeps serving.
4. **Job control is deterministic** — duplicate in-flight requests
   coalesce by request key, queued jobs cancel immediately, running
   jobs cancel cooperatively at a store checkpoint, shutdown drains.
"""

import dataclasses
import io
import threading
import time
from contextlib import redirect_stdout

import pytest

import repro.serving.service as service_mod
from repro.runtime import ExecutionConfig, StoreWarning, request_key
from repro.runtime.backend import SerialBackend
from repro.scenarios import ScenarioSpec, run_scenario
from repro.serving import ServiceError, SweepService, parse_request

SCENARIO = {
    "version": 1,
    "name": "serving-test",
    "model": "fig",
    "params": {"number": 14, "horizon": 2.0},
    "execution": {"replications": 2},
}


@pytest.fixture(scope="module")
def reference():
    """``scenario run`` ground truth: (exit code, stdout bytes)."""
    spec = ScenarioSpec.from_dict(SCENARIO)
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = run_scenario(spec)
    return code, buf.getvalue()


class CountingBackend(SerialBackend):
    """Serial backend that counts every item submitted through it."""

    def __init__(self):
        self.items = 0

    def map(self, fn, items, chunk_size=None):
        items = list(items)
        self.items += len(items)
        return super().map(fn, items, chunk_size)

    def submit_chunks(self, fn, chunks):
        self.items += sum(len(items) for _, items in chunks)
        return super().submit_chunks(fn, chunks)


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("progress_interval", 0.0)
    return SweepService(
        ExecutionConfig(store_dir=tmp_path / "store"), **kwargs
    )


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------


class TestParseRequest:
    def test_valid_request_round_trips(self):
        spec = parse_request({"scenario": SCENARIO})
        assert spec == ScenarioSpec.from_dict(SCENARIO)

    def test_overrides_apply_in_order(self):
        spec = parse_request(
            {
                "scenario": SCENARIO,
                "overrides": ["params.horizon=1.0", "params.horizon=3.0"],
            }
        )
        assert spec.params["horizon"] == 3.0

    def test_mapping_overrides_accepted(self):
        spec = parse_request(
            {"scenario": SCENARIO, "overrides": {"params.horizon": 5.0}}
        )
        assert spec.params["horizon"] == 5.0

    def test_non_mapping_body_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_unknown_request_key_named(self):
        with pytest.raises(ServiceError, match="'bogus'"):
            parse_request({"scenario": SCENARIO, "bogus": 1})

    def test_missing_scenario_named(self):
        with pytest.raises(ServiceError, match="'scenario'"):
            parse_request({"overrides": []})

    def test_non_mapping_scenario_rejected(self):
        with pytest.raises(ServiceError, match="scenario"):
            parse_request({"scenario": "fig14.yaml"})

    def test_bad_smoke_type_rejected(self):
        with pytest.raises(ServiceError, match="smoke"):
            parse_request({"scenario": SCENARIO, "smoke": "yes"})

    def test_bad_overrides_type_rejected(self):
        with pytest.raises(ServiceError, match="overrides"):
            parse_request({"scenario": SCENARIO, "overrides": [1]})

    def test_unknown_scenario_version_rejected(self):
        bad = dict(SCENARIO, version=99)
        with pytest.raises(ServiceError, match="version 99"):
            parse_request({"scenario": bad})

    def test_scenario_schema_error_becomes_service_error(self):
        bad = dict(SCENARIO, model="nonsense")
        with pytest.raises(ServiceError, match="model"):
            parse_request({"scenario": bad})


# ----------------------------------------------------------------------
# Execution: bit-identity, warm zero-compute, degradation
# ----------------------------------------------------------------------


class TestServiceExecution:
    def test_cold_run_matches_scenario_run(self, tmp_path, reference):
        ref_code, ref_out = reference
        with make_service(tmp_path) as service:
            job = service.run({"scenario": SCENARIO}, timeout=300)
            assert job.state == "done"
            assert job.result["exit_code"] == ref_code
            assert job.result["output"] == ref_out
            counters = job.result["store"]
            assert counters["hits"] == 0
            assert counters["misses"] == counters["puts"] > 0

    def test_warm_run_hits_everything_zero_backend_tasks(
        self, tmp_path, reference
    ):
        _, ref_out = reference
        with make_service(tmp_path) as service:
            counting = CountingBackend()
            service._rx = dataclasses.replace(service._rx, backend=counting)
            cold = service.run({"scenario": SCENARIO}, timeout=300)
            cold_items = counting.items
            assert cold_items > 0
            warm = service.run({"scenario": SCENARIO}, timeout=300)
            assert warm.result["output"] == ref_out == cold.result["output"]
            assert warm.result["store"]["misses"] == 0
            assert warm.result["store"]["puts"] == 0
            assert warm.result["store"]["hits"] == cold.result["store"]["puts"]
            assert counting.items == cold_items  # not one task more

    def test_corruption_between_requests_recomputes_and_matches(
        self, tmp_path, reference
    ):
        _, ref_out = reference
        with make_service(tmp_path) as service:
            cold = service.run({"scenario": SCENARIO}, timeout=300)
            store = service._rx.store
            victim = sorted(store._entry_files())[0]
            victim.write_bytes(victim.read_bytes()[:-3])
            with pytest.warns(StoreWarning, match="recomputing"):
                warm = service.run({"scenario": SCENARIO}, timeout=300)
            assert warm.state == "done"
            assert warm.result["output"] == ref_out
            assert warm.result["store"]["misses"] == 1
            assert warm.result["store"]["hits"] == (
                cold.result["store"]["puts"] - 1
            )

    def test_spec_level_value_error_fails_cleanly(self, tmp_path, monkeypatch):
        def boom(spec, rx=None):
            raise ValueError("engine mismatch")

        monkeypatch.setattr(service_mod, "run_scenario", boom)
        with make_service(tmp_path) as service:
            job = service.run({"scenario": SCENARIO}, timeout=30)
            assert job.state == "failed"
            assert "engine mismatch" in job.error

    def test_unexpected_exception_fails_job_not_worker(
        self, tmp_path, monkeypatch
    ):
        calls = []

        def flaky(spec, rx=None):
            calls.append(spec.name)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return 0

        monkeypatch.setattr(service_mod, "run_scenario", flaky)
        with make_service(tmp_path) as service:
            first = service.run({"scenario": SCENARIO}, timeout=30)
            assert first.state == "failed"
            assert "RuntimeError: boom" in first.error
            again = service.run({"scenario": SCENARIO}, timeout=30)
            assert again.state == "done"  # the worker survived

    def test_job_events_trace_the_lifecycle(self, tmp_path):
        with make_service(tmp_path) as service:
            job = service.run({"scenario": SCENARIO}, timeout=300)
            kinds = [e["event"] for e in job.events_since(0)]
            states = [
                e["state"] for e in job.events_since(0) if e["event"] == "state"
            ]
            assert states == ["queued", "running", "done"]
            progress = [e for e in job.events_since(0) if e["event"] == "progress"]
            assert progress, "progress_interval=0 must emit progress events"
            assert progress[-1]["puts"] == job.result["store"]["puts"]
            assert [e["seq"] for e in job.events_since(0)] == list(
                range(len(kinds))
            )

    def test_snapshot_shape(self, tmp_path):
        with make_service(tmp_path) as service:
            job = service.run({"scenario": SCENARIO}, timeout=300)
            snap = job.snapshot()
            assert snap["state"] == "done"
            assert snap["name"] == "serving-test"
            assert snap["model"] == "fig"
            assert len(snap["request_key"]) == 64
            assert snap["result"]["exit_code"] == 0


@pytest.mark.slow
class TestProcessesBackend:
    def test_cold_and_warm_match_reference(self, tmp_path, reference):
        _, ref_out = reference
        execution = ExecutionConfig(
            workers=2, backend="processes", store_dir=tmp_path / "store"
        )
        with SweepService(execution, progress_interval=0.0) as service:
            cold = service.run({"scenario": SCENARIO}, timeout=600)
            assert cold.state == "done"
            assert cold.result["output"] == ref_out
            warm = service.run({"scenario": SCENARIO}, timeout=600)
            assert warm.result["output"] == ref_out
            assert warm.result["store"]["misses"] == 0


# ----------------------------------------------------------------------
# Job control: coalescing, cancellation, shutdown
# ----------------------------------------------------------------------


@pytest.fixture
def gated(tmp_path, monkeypatch):
    """A service whose jobs block until ``release`` is set."""
    started = threading.Event()
    release = threading.Event()

    def gated_run(spec, rx=None):
        started.set()
        if not release.wait(30):
            raise RuntimeError("gate never released")
        return 0

    monkeypatch.setattr(service_mod, "run_scenario", gated_run)
    service = make_service(tmp_path)
    yield service, started, release
    release.set()
    service.close()


@pytest.fixture
def spinning(tmp_path, monkeypatch):
    """A service whose jobs poll the store until cancelled."""
    started = threading.Event()

    def spinning_run(spec, rx=None):
        started.set()
        key = request_key({"spin": spec.name})
        while True:
            rx.store.get(key)  # each get is a cancellation checkpoint
            time.sleep(0.005)

    monkeypatch.setattr(service_mod, "run_scenario", spinning_run)
    service = make_service(tmp_path)
    yield service, started
    service.close()


class TestJobControl:
    def test_duplicate_inflight_requests_coalesce(self, gated):
        service, started, release = gated
        first, created_first = service.submit({"scenario": SCENARIO})
        assert created_first
        assert started.wait(10)
        second, created_second = service.submit({"scenario": SCENARIO})
        assert second is first
        assert not created_second
        release.set()
        assert first.wait(10)
        assert first.state == "done"

    def test_distinct_requests_get_distinct_jobs(self, gated):
        service, started, release = gated
        first, _ = service.submit({"scenario": SCENARIO})
        other = {
            "scenario": SCENARIO,
            "overrides": ["params.horizon=1.0"],
        }
        second, created = service.submit(other)
        assert created
        assert second is not first
        assert second.request_digest != first.request_digest

    def test_terminal_jobs_never_coalesce(self, gated):
        service, started, release = gated
        release.set()
        first = service.run({"scenario": SCENARIO}, timeout=10)
        assert first.state == "done"
        second, created = service.submit({"scenario": SCENARIO})
        assert created
        assert second is not first

    def test_cancel_queued_job_is_immediate(self, gated):
        service, started, release = gated
        running, _ = service.submit({"scenario": SCENARIO})
        assert started.wait(10)
        queued, _ = service.submit(
            {"scenario": SCENARIO, "overrides": ["params.horizon=1.0"]}
        )
        assert queued.state == "queued"
        service.cancel(queued.id)
        assert queued.state == "cancelled"
        assert queued.wait(1)
        release.set()
        assert running.wait(10)
        assert running.state == "done"

    def test_cancel_unknown_job_returns_none(self, gated):
        service, *_ = gated
        assert service.cancel("job-999") is None

    def test_cancel_running_job_is_cooperative(self, spinning):
        service, started = spinning
        job, _ = service.submit({"scenario": SCENARIO})
        assert started.wait(10)
        assert job.state == "running"
        service.cancel(job.id)
        assert job.wait(10)
        assert job.state == "cancelled"
        assert "cancelled" in job.error

    def test_close_cancels_queued_and_running(self, spinning):
        service, started = spinning
        running, _ = service.submit({"scenario": SCENARIO})
        assert started.wait(10)
        queued, _ = service.submit(
            {"scenario": SCENARIO, "overrides": ["params.horizon=1.0"]}
        )
        service.close()
        assert running.state == "cancelled"
        assert queued.state == "cancelled"
        with pytest.raises(ServiceError, match="shut down"):
            service.submit({"scenario": SCENARIO})

    def test_run_timeout_raises(self, gated):
        service, started, release = gated
        with pytest.raises(TimeoutError, match="running"):
            service.run({"scenario": SCENARIO}, timeout=0.2)
        release.set()


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------


class TestStats:
    def test_stats_aggregate_jobs_and_store(self, tmp_path):
        with make_service(tmp_path) as service:
            service.run({"scenario": SCENARIO}, timeout=300)
            service.run({"scenario": SCENARIO}, timeout=300)
            service.record_request("GET /stats", 1.5)
            service.record_request("POST /run", 2.5, error=True)
            stats = service.stats()
            assert stats["jobs"]["total"] == 2
            assert stats["jobs"]["done"] == 2
            assert stats["jobs"]["latency_ms"]["count"] == 2
            assert stats["requests"]["total"] == 2
            assert stats["requests"]["errors"] == 1
            assert stats["requests"]["by_endpoint"] == {
                "GET /stats": 1,
                "POST /run": 1,
            }
            store = stats["store"]
            assert store["enabled"]
            assert store["hits"] == store["puts"] == store["misses"] > 0
            assert store["hit_rate"] == pytest.approx(0.5)
