"""The HTTP front end: routing, error mapping, streaming, disconnects.

The service-layer invariants are asserted in ``test_service.py``; this
module checks that the HTTP surface preserves them — a ``/run``
response body carries the byte-identical output, schema violations map
to 400 with the offending key in the message, unknown jobs to 404,
wrong methods to 405, malformed JSON to 400 — and that a client
hanging up mid-stream ends only its own response (the job keeps
running and stays pollable).
"""

import http.client
import io
import json
import threading
from contextlib import redirect_stdout

import pytest

import repro.serving.service as service_mod
from repro.runtime import ExecutionConfig
from repro.scenarios import ScenarioSpec, run_scenario
from repro.serving import (
    ServerError,
    SweepService,
    fetch_json,
    fetch_stats,
    query_server,
    serve_http,
)

SCENARIO = {
    "version": 1,
    "name": "serving-http-test",
    "model": "fig",
    "params": {"number": 14, "horizon": 2.0},
    "execution": {"replications": 2},
}


@pytest.fixture(scope="module")
def reference():
    spec = ScenarioSpec.from_dict(SCENARIO)
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = run_scenario(spec)
    return code, buf.getvalue()


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One real server over one warm-able store, shared by the module."""
    store_dir = tmp_path_factory.mktemp("serving-http") / "store"
    service = SweepService(
        ExecutionConfig(store_dir=store_dir), progress_interval=0.0
    )
    server, _thread = serve_http(service)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.close()


@pytest.fixture
def gated(tmp_path, monkeypatch):
    """A server whose jobs block until ``release`` is set."""
    started = threading.Event()
    release = threading.Event()

    def gated_run(spec, rx=None):
        started.set()
        if not release.wait(30):
            raise RuntimeError("gate never released")
        print("gated output")
        return 0

    monkeypatch.setattr(service_mod, "run_scenario", gated_run)
    service = SweepService(
        ExecutionConfig(store_dir=tmp_path / "store"), progress_interval=0.0
    )
    server, _thread = serve_http(service)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", started, release
    release.set()
    server.shutdown()
    server.server_close()
    service.close()


def _conn(base):
    host, port = base.removeprefix("http://").split(":")
    return http.client.HTTPConnection(host, int(port), timeout=30)


class TestEndpoints:
    def test_health(self, live):
        base, _ = live
        assert fetch_json(base, "/health") == {"status": "ok"}

    def test_sync_run_matches_reference_and_stats_count_hits(
        self, live, reference
    ):
        base, _ = live
        ref_code, ref_out = reference
        cold = query_server(base, {"scenario": SCENARIO}, mode="sync")
        assert cold["state"] == "done"
        assert cold["result"]["exit_code"] == ref_code
        assert cold["result"]["output"] == ref_out
        before = fetch_stats(base)["store"]
        warm = query_server(base, {"scenario": SCENARIO}, mode="sync")
        assert warm["result"]["output"] == ref_out
        after = fetch_stats(base)["store"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]
        assert after["puts"] == before["puts"]

    def test_stream_mode_delivers_events_then_snapshot(self, live, reference):
        base, _ = live
        _, ref_out = reference
        events = []
        snap = query_server(
            base, {"scenario": SCENARIO}, mode="stream", on_event=events.append
        )
        assert snap["result"]["output"] == ref_out
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_poll_mode_walks_the_job_endpoints(self, live, reference):
        base, _ = live
        _, ref_out = reference
        events = []
        snap = query_server(
            base, {"scenario": SCENARIO}, mode="poll", on_event=events.append
        )
        assert snap["state"] == "done"
        assert snap["result"]["output"] == ref_out
        assert [e["seq"] for e in events] == list(range(len(events)))
        # and the job stays inspectable afterwards
        again = fetch_json(base, f"/jobs/{snap['id']}")
        assert again["state"] == "done"
        listing = fetch_json(base, "/jobs")
        assert snap["id"] in {j["id"] for j in listing["jobs"]}

    def test_events_endpoint_supports_since(self, live):
        base, _ = live
        snap = query_server(base, {"scenario": SCENARIO}, mode="sync")
        total = snap["events"]
        page = fetch_json(base, f"/jobs/{snap['id']}/events?since={total - 1}")
        assert [e["seq"] for e in page["events"]] == [total - 1]

    def test_stats_shape(self, live):
        base, _ = live
        stats = fetch_stats(base)
        assert set(stats) == {"requests", "latency_ms", "jobs", "store"}
        assert stats["requests"]["total"] > 0
        assert stats["latency_ms"]["count"] > 0
        assert stats["store"]["enabled"]


class TestErrorMapping:
    def test_schema_violation_is_400_naming_the_key(self, live):
        base, _ = live
        with pytest.raises(ServerError, match="'bogus'") as err:
            query_server(base, {"scenario": SCENARIO, "bogus": 1})
        assert err.value.status == 400

    def test_unknown_scenario_version_is_400(self, live):
        base, _ = live
        bad = dict(SCENARIO, version=99)
        with pytest.raises(ServerError, match="version 99") as err:
            query_server(base, {"scenario": bad})
        assert err.value.status == 400

    def test_malformed_json_body_is_400(self, live):
        base, _ = live
        conn = _conn(base)
        conn.request(
            "POST", "/run", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        conn.close()
        assert resp.status == 400
        assert "not valid JSON" in payload["error"]

    def test_empty_body_is_400(self, live):
        base, _ = live
        conn = _conn(base)
        conn.request("POST", "/run", body=b"")
        resp = conn.getresponse()
        conn.close()
        assert resp.status == 400

    def test_oversized_body_is_413(self, live):
        base, _ = live
        conn = _conn(base)
        conn.putrequest("POST", "/run")
        conn.putheader("Content-Length", str(10 * 1024 * 1024))
        conn.endheaders()
        resp = conn.getresponse()
        conn.close()
        assert resp.status == 413

    def test_unknown_job_is_404(self, live):
        base, _ = live
        with pytest.raises(ServerError) as err:
            fetch_json(base, "/jobs/job-99999")
        assert err.value.status == 404

    def test_unknown_path_is_404(self, live):
        base, _ = live
        with pytest.raises(ServerError) as err:
            fetch_json(base, "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, live):
        base, _ = live
        with pytest.raises(ServerError) as err:
            fetch_json(base, "/run")  # GET on a POST endpoint
        assert err.value.status == 405

    def test_errors_count_in_stats(self, live):
        base, _ = live
        before = fetch_stats(base)["requests"]["errors"]
        with pytest.raises(ServerError):
            fetch_json(base, "/nope")
        after = fetch_stats(base)["requests"]["errors"]
        assert after == before + 1


class TestJobsOverHTTP:
    def test_submit_returns_202_and_coalesces_duplicates(self, gated):
        base, started, release = gated
        conn = _conn(base)
        body = json.dumps({"scenario": SCENARIO}).encode()
        conn.request("POST", "/jobs", body=body)
        resp = conn.getresponse()
        first = json.loads(resp.read())
        conn.close()
        assert resp.status == 202
        assert first["created_now"]
        assert started.wait(10)
        conn = _conn(base)
        conn.request("POST", "/jobs", body=body)
        resp = conn.getresponse()
        second = json.loads(resp.read())
        conn.close()
        assert resp.status == 200  # coalesced, not re-created
        assert not second["created_now"]
        assert second["id"] == first["id"]
        release.set()

    def test_cancel_endpoint_cancels_a_queued_job(self, gated):
        base, started, release = gated
        running = fetch_json_post(base, "/jobs", {"scenario": SCENARIO})
        assert started.wait(10)
        queued = fetch_json_post(
            base,
            "/jobs",
            {"scenario": SCENARIO, "overrides": ["params.horizon=1.0"]},
        )
        assert queued["state"] == "queued"
        cancelled = fetch_json_post(base, f"/jobs/{queued['id']}/cancel", {})
        assert cancelled["state"] == "cancelled"
        release.set()
        done = _wait_done(base, running["id"])
        assert done["state"] == "done"

    def test_client_disconnect_mid_stream_leaves_job_running(self, gated):
        import socket

        base, started, release = gated
        host, port = base.removeprefix("http://").split(":")
        body = json.dumps({"scenario": SCENARIO}).encode()
        sock = socket.create_connection((host, int(port)), timeout=30)
        sock.sendall(
            (
                f"POST /run?stream=1 HTTP/1.0\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        stream = sock.makefile("rb")
        while stream.readline() not in (b"\r\n", b"\n", b""):
            pass  # skip the response headers
        first = json.loads(stream.readline())
        assert first["event"] == "state"
        assert started.wait(10)
        stream.close()
        sock.close()  # hang up mid-stream, job still running
        listing = fetch_json(base, "/jobs")
        [job] = [j for j in listing["jobs"] if j["state"] == "running"]
        job_id = job["id"]
        release.set()
        final = _wait_done(base, job_id)
        assert final["state"] == "done"
        assert final["result"]["output"] == "gated output\n"


def fetch_json_post(base, path, body):
    conn = _conn(base)
    conn.request("POST", path, body=json.dumps(body).encode())
    resp = conn.getresponse()
    payload = json.loads(resp.read())
    conn.close()
    assert resp.status < 300, payload
    return payload


def _wait_done(base, job_id, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = fetch_json(base, f"/jobs/{job_id}")
        if snap["state"] in ("done", "failed", "cancelled"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")
