"""Tests for the Fig. 10 simple-node model (Section V)."""

import pytest

from repro.analysis import boundedness, liveness_summary, p_invariants
from repro.models import SimpleNodeModel, SimpleNodeParameters


class TestParameters:
    def test_defaults_are_table_viii(self):
        p = SimpleNodeParameters()
        assert p.mean_event_gap == 3.0
        assert p.min_event_separation == 1.0
        assert p.receive_delay == 0.00597
        assert p.computation_delay == 1.0274
        assert p.transmit_delay == 0.0059

    def test_cycle_time(self):
        assert SimpleNodeParameters().cycle_time() == pytest.approx(5.03927)

    def test_analytic_fractions_sum_to_one(self):
        fr = SimpleNodeParameters().analytic_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_analytic_wait_fraction(self):
        fr = SimpleNodeParameters().analytic_fractions()
        assert fr["Wait"] == pytest.approx(3.0 / 5.03927)


class TestStructure:
    def test_safe_and_live(self):
        net = SimpleNodeModel().build()
        b = boundedness(net)
        assert b.is_safe
        assert b.n_states == 5
        live = liveness_summary(net)
        assert live.deadlock_free
        assert not live.dead

    def test_stage_token_invariant(self):
        net = SimpleNodeModel().build()
        invs = p_invariants(net)
        assert any(
            inv.support
            == {"Wait", "Temp_Place", "Receiving", "Computation", "Transmitting"}
            for inv in invs
        )


class TestSimulation:
    def test_converges_to_analytic(self):
        model = SimpleNodeModel()
        sim = model.simulate(30_000.0, seed=5, warmup=100.0)
        exact = model.analytic_result(1.0)
        for stage, p in exact.stage_probabilities.items():
            assert sim.stage_probabilities[stage] == pytest.approx(
                p, abs=0.01
            ), stage

    def test_mean_power_near_paper_value(self):
        # Eq. (8) with Table VII/VIII gives ~1.225 mW (0.326519 J / 266.5 s).
        model = SimpleNodeModel()
        r = model.simulate(30_000.0, seed=5, warmup=100.0)
        assert r.mean_power_mw == pytest.approx(1.2252, abs=0.005)

    def test_energy_over_duration(self):
        model = SimpleNodeModel()
        r = model.analytic_result(266.5)
        # The paper's printed Petri-net energy.
        assert r.energy_over(266.5) == pytest.approx(0.326519, abs=0.002)

    def test_events_counted(self):
        r = SimpleNodeModel().simulate(5000.0, seed=6)
        assert r.events == pytest.approx(5000 / 5.04, rel=0.1)

    def test_transmitting_probability_is_small(self):
        # Table VIII/IX's 19.7% for Transmitting is a typo; the delay
        # ratio gives ~0.12% (consistent with the printed energy).
        r = SimpleNodeModel().simulate(20_000.0, seed=7, warmup=100.0)
        assert r.stage_probabilities["Transmitting"] < 0.01

    def test_custom_parameters(self):
        p = SimpleNodeParameters(mean_event_gap=10.0)
        r = SimpleNodeModel(p).simulate(20_000.0, seed=8, warmup=100.0)
        assert r.stage_probabilities["Wait"] > 0.7
