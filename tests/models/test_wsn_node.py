"""Tests for the Figs. 12/13 WSN node model."""

import pytest

from repro.analysis import p_invariants
from repro.models import NodeParameters, WSNNodeModel, build_wsn_node_net
from repro.models.workload import ClosedWorkload, OpenWorkload
from repro.models.wsn_node import CPU_PLACES, RADIO_PLACES, STAGE_PLACES


class TestParameters:
    def test_defaults_are_table_xi(self):
        p = NodeParameters()
        assert p.radio_startup_delay == 0.000194
        assert p.channel_listening == 0.001
        assert p.transmit_receive == 0.000576
        assert p.cpu_power_up_delay == 0.253
        assert p.dvs_mode_switch == 0.05

    def test_radio_phase_duration_is_the_paper_optimum(self):
        # 0.000194 + 0.001 + 0.000576 = 0.00177: the Fig. 14 optimum PDT.
        assert NodeParameters().radio_phase_duration() == pytest.approx(0.00177)

    def test_with_threshold(self):
        p = NodeParameters(power_down_threshold=0.5)
        q = p.with_threshold(0.9)
        assert q.power_down_threshold == 0.9
        assert p.power_down_threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeParameters(power_down_threshold=-1.0)
        with pytest.raises(ValueError):
            NodeParameters(arrival_rate=0.0)
        with pytest.raises(ValueError):
            NodeParameters(com_packets=0)

    def test_dvs_class_lookup(self):
        p = NodeParameters()
        assert p.dvs_class(3).execute_delay_s == pytest.approx(0.081578)
        with pytest.raises(KeyError):
            p.dvs_class(9)


class TestStructure:
    def test_conservation_invariants_present(self):
        net = build_wsn_node_net(NodeParameters(), ClosedWorkload(1.0))
        supports = [inv.support for inv in p_invariants(net)]
        assert frozenset(CPU_PLACES) in supports
        assert frozenset(RADIO_PLACES) in supports
        assert frozenset(STAGE_PLACES) in supports

    def test_table_xi_transitions_present(self):
        net = build_wsn_node_net(NodeParameters(), ClosedWorkload(1.0))
        for name in (
            "T0",
            "RadioStartUpDelay_R",
            "Channel_Listening_R",
            "Transmitting_Receiving_R",
            "T17",
            "T7",
            "T19",
            "RadioStartUpDelay_T",
            "Wait_Transmitting",
            "Wait_Begin",
            "T3",
            "Power_Up_Delay",
            "DVS_Delay",
            "DVS_1",
            "DVS_2",
            "DVS_3",
            "Power_Down_Threshold",
        ):
            assert net.has_transition(name), name

    def test_dynamic_token_conservation(self):
        from repro.core import Simulation

        net = build_wsn_node_net(NodeParameters(power_down_threshold=0.01), ClosedWorkload(1.0))
        sim = Simulation(net, seed=2)
        violations = []

        def check(t, name, c, p):
            for group in (CPU_PLACES, RADIO_PLACES, STAGE_PLACES):
                if sum(sim.marking.count(pl) for pl in group) != 1:
                    violations.append((t, name, group))

        sim.add_observer(check)
        sim.run(60.0)
        assert not violations


class TestBehaviour:
    def run(self, pdt, kind="closed", horizon=300.0, seed=3, **kw):
        params = NodeParameters(power_down_threshold=pdt, **kw)
        return WSNNodeModel(params, kind).simulate(horizon, seed=seed)

    def test_fractions_sum_to_one(self):
        r = self.run(0.01)
        assert sum(r.cpu_fractions.values()) == pytest.approx(1.0, abs=1e-6)
        assert sum(r.radio_fractions.values()) == pytest.approx(1.0, abs=1e-6)
        assert sum(r.stage_fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_events_complete(self):
        r = self.run(0.01)
        assert r.events_completed > 100  # ~1 per 1.5 s over 300 s

    def test_tiny_threshold_doubles_wakeups(self):
        small = self.run(1e-9)
        just_above = self.run(0.0018)
        # Below the 0.00177 s radio phase the CPU takes an extra wake
        # per cycle (sleeps during the transmit phase).
        ratio = (small.cpu_wakeups / small.events_completed) / (
            just_above.cpu_wakeups / just_above.events_completed
        )
        assert ratio == pytest.approx(2.0, abs=0.2)

    def test_huge_threshold_never_sleeps(self):
        r = self.run(1000.0)
        assert r.cpu_wakeups <= 1
        assert r.cpu_fractions["standby"] == pytest.approx(0.0, abs=1e-3)

    def test_energy_u_shape(self):
        """The Fig. 14 claim: optimum strictly between the extremes."""
        e_tiny = self.run(1e-9).total_energy_j
        e_opt = self.run(0.0018).total_energy_j
        e_huge = self.run(1000.0).total_energy_j
        assert e_opt < e_tiny
        assert e_opt < e_huge

    def test_open_model_queues_events(self):
        # Open workload at high rate: events queue, node keeps cycling.
        r = self.run(0.01, kind="open", arrival_rate=5.0)
        assert r.events_completed > 150

    def test_closed_model_never_queues(self):
        from repro.core import Simulation

        net = build_wsn_node_net(
            NodeParameters(power_down_threshold=0.01), ClosedWorkload(1.0)
        )
        sim = Simulation(net, seed=4)
        max_queue = [0]
        sim.add_observer(
            lambda t, n, c, p: max_queue.__setitem__(
                0, max(max_queue[0], sim.marking.count("Event_Queue"))
            )
        )
        sim.run(120.0)
        assert max_queue[0] <= 1

    def test_radio_wakeups_twice_per_cycle(self):
        r = self.run(0.01)
        assert r.radio_wakeups == pytest.approx(2 * r.events_completed, abs=2)

    def test_com_packets_lengthen_radio_active(self):
        short = self.run(0.01, com_packets=1)
        long = self.run(0.01, com_packets=10)
        assert (
            long.radio_fractions["active"] > short.radio_fractions["active"]
        )

    def test_invalid_workload_kind(self):
        with pytest.raises(ValueError):
            WSNNodeModel(NodeParameters(), "sideways")

    def test_reproducible(self):
        a = self.run(0.01, seed=9)
        b = self.run(0.01, seed=9)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
        assert a.events_completed == b.events_completed

    def test_breakdown_total_matches_sum(self):
        r = self.run(0.01)
        assert r.total_energy_j == pytest.approx(
            sum(r.breakdown.energy_j.values())
        )
