"""Tests for the multi-node network layer."""

import pytest

from repro.energy import LinearBattery
from repro.models import (
    GridTopology,
    LineTopology,
    NetworkResult,
    NodeParameters,
    SensorNetworkModel,
    StarTopology,
)


class TestTopologies:
    def test_line_rates_gradient(self):
        rates = LineTopology(4).effective_rates(0.5)
        assert rates == [2.0, 1.5, 1.0, 0.5]

    def test_star_rates(self):
        topo = StarTopology(3)
        assert topo.n_nodes == 4
        assert topo.effective_rates(1.0) == [4.0, 1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LineTopology(0)
        with pytest.raises(ValueError):
            StarTopology(0)
        with pytest.raises(ValueError):
            LineTopology(2).effective_rates(0.0)

    def test_describe(self):
        assert "line" in LineTopology(3).describe()
        assert "star" in StarTopology(2).describe()
        assert "grid" in GridTopology(3, 2).describe()


class TestGridTopology:
    def test_node_count_and_positions(self):
        topo = GridTopology(4, 3)
        assert topo.n_nodes == 12
        assert topo.position(0) == (0, 0)
        assert topo.position(3) == (1, 0)
        assert topo.position(11) == (3, 2)
        with pytest.raises(ValueError):
            topo.position(12)

    def test_corner_node_carries_everything(self):
        topo = GridTopology(5, 4)
        rates = topo.effective_rates(1.0)
        # node (0, 0) drains the whole 20-node deployment
        assert rates[0] == 20.0
        assert max(rates) == rates[0]

    def test_column_then_row_tree_conserves_traffic(self):
        # Each sink-row node drains its own column plus all columns
        # beyond it; interior nodes drain the rest of their column.
        topo = GridTopology(3, 3)
        rates = topo.effective_rates(1.0)
        # columns are [x*3 .. x*3+2]; sink row is indices 0, 3, 6
        assert [rates[i] for i in (0, 3, 6)] == [9.0, 6.0, 3.0]
        assert [rates[i] for i in (1, 2)] == [2.0, 1.0]
        # every node's inflow equals the sum of its children plus itself
        assert rates[0] == 1 + rates[1] + rates[3]
        assert rates[3] == 1 + rates[4] + rates[6]

    def test_validation(self):
        with pytest.raises(ValueError):
            GridTopology(0, 3)
        with pytest.raises(ValueError):
            GridTopology(3, 0)
        with pytest.raises(ValueError):
            GridTopology(2, 2).effective_rates(0.0)


class TestNetworkSimulation:
    def network(self, n=3, pdt=0.01):
        return SensorNetworkModel(
            LineTopology(n),
            NodeParameters(power_down_threshold=pdt),
            LinearBattery(1000.0, 4.5, usable_fraction=0.85),
        )

    def test_result_shape(self):
        r = self.network().simulate(horizon=60.0, seed=1, base_rate=0.5)
        assert len(r.nodes) == 3
        assert r.total_energy_j == pytest.approx(
            sum(n.energy_j for n in r.nodes)
        )
        assert r.power_down_threshold == 0.01

    def test_hotspot_is_sink_adjacent(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        # node 1 relays everyone: most events, most energy, dies first
        assert r.hotspot.node_id == 1
        assert r.nodes[0].events_completed > r.nodes[-1].events_completed
        assert r.nodes[0].energy_j > r.nodes[-1].energy_j

    def test_network_lifetime_is_min(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        assert r.network_lifetime_days == min(
            n.lifetime_days for n in r.nodes
        )
        assert r.network_lifetime_days == r.hotspot.lifetime_days

    def test_lifetime_imbalance_above_one(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        assert r.lifetime_imbalance() > 1.0

    def test_star_hub_is_hotspot(self):
        net = SensorNetworkModel(
            StarTopology(3), NodeParameters(power_down_threshold=0.01)
        )
        r = net.simulate(horizon=120.0, seed=2, base_rate=0.5)
        assert r.hotspot.node_id == 1

    def test_threshold_sweep(self):
        results = self.network().sweep_thresholds(
            (1e-9, 0.01, 100.0), horizon=60.0, seed=3, base_rate=0.5
        )
        assert len(results) == 3
        lifetimes = [r.network_lifetime_days for r in results]
        # interior threshold beats both extremes (the Fig. 14 U-shape
        # carries over to the network metric)
        assert lifetimes[1] > lifetimes[0]
        assert lifetimes[1] > lifetimes[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SensorNetworkModel(LineTopology(2), workload="bogus")
        with pytest.raises(ValueError):
            self.network().simulate(horizon=0.0)

    def test_reproducible(self):
        a = self.network().simulate(horizon=60.0, seed=5, base_rate=0.5)
        b = self.network().simulate(horizon=60.0, seed=5, base_rate=0.5)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)


class TestNetworkResultMerge:
    def run_parts(self, n=4, horizon=30.0):
        """One serial run plus the same run split into per-node parts."""
        net = SensorNetworkModel(
            LineTopology(n), NodeParameters(power_down_threshold=0.01)
        )
        whole = net.simulate(horizon=horizon, seed=2, base_rate=0.5)
        parts = [
            NetworkResult(
                topology=whole.topology,
                power_down_threshold=whole.power_down_threshold,
                horizon_s=whole.horizon_s,
                nodes=[node],
            )
            for node in whole.nodes
        ]
        return whole, parts

    def test_merge_recovers_whole(self):
        whole, parts = self.run_parts()
        assert NetworkResult.merge(parts) == whole
        # order independence
        assert NetworkResult.merge(parts[::-1]) == whole

    def test_merge_associative(self):
        whole, parts = self.run_parts()
        left = NetworkResult.merge(
            [NetworkResult.merge(parts[:2]), NetworkResult.merge(parts[2:])]
        )
        right = NetworkResult.merge(
            [parts[0], NetworkResult.merge(parts[1:])]
        )
        assert left == right == NetworkResult.merge(parts)

    def test_merged_aggregates_decompose_over_shards(self):
        whole, parts = self.run_parts()
        merged = NetworkResult.merge(parts)
        assert merged.total_energy_j == pytest.approx(
            sum(p.total_energy_j for p in parts)
        )
        assert merged.network_lifetime_days == min(
            p.network_lifetime_days for p in parts
        )
        assert merged.hotspot == min(
            (p.hotspot for p in parts), key=lambda n: n.lifetime_days
        )

    def test_merge_validation(self):
        whole, parts = self.run_parts()
        with pytest.raises(ValueError):
            NetworkResult.merge([])
        with pytest.raises(ValueError):
            NetworkResult.merge([parts[0], parts[0]])  # duplicate node id
        mismatched = NetworkResult(
            topology=parts[0].topology,
            power_down_threshold=0.5,
            horizon_s=parts[0].horizon_s,
            nodes=parts[1].nodes,
        )
        with pytest.raises(ValueError):
            NetworkResult.merge([parts[0], mismatched])


class TestShardedSimulation:
    def network(self, topology):
        return SensorNetworkModel(
            topology, NodeParameters(power_down_threshold=0.01)
        )

    def test_shards_bit_identical_to_serial(self):
        # shards=1 runs the historical serial code path; every shard
        # count and strategy must reproduce it exactly.
        net = self.network(LineTopology(5))
        serial = net.simulate(horizon=20.0, seed=7, base_rate=0.5)
        for shards in (2, 4, 5):
            for strategy in ("contiguous", "round-robin"):
                sharded = net.simulate(
                    horizon=20.0,
                    seed=7,
                    base_rate=0.5,
                    shards=shards,
                    shard_strategy=strategy,
                )
                assert sharded == serial

    def test_spawn_seed_mode_shard_invariant(self):
        net = self.network(LineTopology(4))
        runs = [
            net.simulate(
                horizon=10.0, seed=3, base_rate=0.5,
                shards=shards, seed_mode="spawn",
            )
            for shards in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_sweep_thresholds_sharded(self):
        net = self.network(LineTopology(3))
        serial = net.sweep_thresholds(
            (1e-9, 0.01), horizon=10.0, seed=4, base_rate=0.5
        )
        sharded = net.sweep_thresholds(
            (1e-9, 0.01), horizon=10.0, seed=4, base_rate=0.5, shards=3
        )
        assert sharded == serial

    def test_hundred_node_grid_through_sharded_path(self):
        # The ISSUE acceptance scenario: a >= 100-node grid completes
        # through the sharded path and the merged result's total energy
        # equals the sum over shard node sets.
        net = self.network(GridTopology(10, 10))
        result = net.simulate(
            horizon=40.0, seed=1, base_rate=0.004, shards=8
        )
        assert len(result.nodes) == 100
        assert [n.node_id for n in result.nodes] == list(range(1, 101))
        assert result.total_energy_j == pytest.approx(
            sum(n.energy_j for n in result.nodes)
        )
        # energy-hole structure survives the merge: the sink-adjacent
        # corner relays all 100 nodes' traffic
        assert result.nodes[0].event_rate == pytest.approx(0.4)
        assert result.hotspot.node_id == 1
