"""Tests for the multi-node network layer."""

import pytest

from repro.energy import LinearBattery
from repro.models import (
    LineTopology,
    NodeParameters,
    SensorNetworkModel,
    StarTopology,
)


class TestTopologies:
    def test_line_rates_gradient(self):
        rates = LineTopology(4).effective_rates(0.5)
        assert rates == [2.0, 1.5, 1.0, 0.5]

    def test_star_rates(self):
        topo = StarTopology(3)
        assert topo.n_nodes == 4
        assert topo.effective_rates(1.0) == [4.0, 1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LineTopology(0)
        with pytest.raises(ValueError):
            StarTopology(0)
        with pytest.raises(ValueError):
            LineTopology(2).effective_rates(0.0)

    def test_describe(self):
        assert "line" in LineTopology(3).describe()
        assert "star" in StarTopology(2).describe()


class TestNetworkSimulation:
    def network(self, n=3, pdt=0.01):
        return SensorNetworkModel(
            LineTopology(n),
            NodeParameters(power_down_threshold=pdt),
            LinearBattery(1000.0, 4.5, usable_fraction=0.85),
        )

    def test_result_shape(self):
        r = self.network().simulate(horizon=60.0, seed=1, base_rate=0.5)
        assert len(r.nodes) == 3
        assert r.total_energy_j == pytest.approx(
            sum(n.energy_j for n in r.nodes)
        )
        assert r.power_down_threshold == 0.01

    def test_hotspot_is_sink_adjacent(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        # node 1 relays everyone: most events, most energy, dies first
        assert r.hotspot.node_id == 1
        assert r.nodes[0].events_completed > r.nodes[-1].events_completed
        assert r.nodes[0].energy_j > r.nodes[-1].energy_j

    def test_network_lifetime_is_min(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        assert r.network_lifetime_days == min(
            n.lifetime_days for n in r.nodes
        )
        assert r.network_lifetime_days == r.hotspot.lifetime_days

    def test_lifetime_imbalance_above_one(self):
        r = self.network().simulate(horizon=120.0, seed=1, base_rate=0.5)
        assert r.lifetime_imbalance() > 1.0

    def test_star_hub_is_hotspot(self):
        net = SensorNetworkModel(
            StarTopology(3), NodeParameters(power_down_threshold=0.01)
        )
        r = net.simulate(horizon=120.0, seed=2, base_rate=0.5)
        assert r.hotspot.node_id == 1

    def test_threshold_sweep(self):
        results = self.network().sweep_thresholds(
            (1e-9, 0.01, 100.0), horizon=60.0, seed=3, base_rate=0.5
        )
        assert len(results) == 3
        lifetimes = [r.network_lifetime_days for r in results]
        # interior threshold beats both extremes (the Fig. 14 U-shape
        # carries over to the network metric)
        assert lifetimes[1] > lifetimes[0]
        assert lifetimes[1] > lifetimes[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SensorNetworkModel(LineTopology(2), workload="bogus")
        with pytest.raises(ValueError):
            self.network().simulate(horizon=0.0)

    def test_reproducible(self):
        a = self.network().simulate(horizon=60.0, seed=5, base_rate=0.5)
        b = self.network().simulate(horizon=60.0, seed=5, base_rate=0.5)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
