"""Tests for the Markov CPU estimator wrapper."""

import pytest

from repro.des import CPUStates
from repro.energy import PXA271_CPU_POWER_MW
from repro.models import CPUMarkovModel


class TestInterface:
    def model(self):
        return CPUMarkovModel(1.0, 10.0, 0.1, 0.3)

    def test_state_fractions_keys(self):
        f = self.model().state_fractions()
        assert set(f) == set(CPUStates.ALL)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_simulate_shape(self):
        r = self.model().simulate(1000.0)
        assert sum(r.fractions.values()) == pytest.approx(1.0)
        assert r.duration == 1000.0
        assert r.jobs_arrived == 1000

    def test_simulate_ignores_seed(self):
        a = self.model().simulate(1000.0, seed=1)
        b = self.model().simulate(1000.0, seed=2)
        assert a.fractions == b.fractions

    def test_warmup_shrinks_duration(self):
        r = self.model().simulate(1000.0, warmup=200.0)
        assert r.duration == 800.0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            self.model().simulate(0.0)

    def test_dwell_consistent_with_fractions(self):
        r = self.model().simulate(500.0)
        for s, f in r.fractions.items():
            assert r.dwell[s] == pytest.approx(f * 500.0)

    def test_energy_j(self):
        m = self.model()
        e = m.energy_j(PXA271_CPU_POWER_MW, 1000.0)
        f = m.state_fractions()
        expected_mw = sum(
            PXA271_CPU_POWER_MW[s] * p for s, p in f.items()
        )
        assert e == pytest.approx(expected_mw * 1000.0 / 1000.0 / 1000.0 * 1000.0)

    def test_wakeup_expectation_positive(self):
        r = self.model().simulate(1000.0)
        assert r.wakeups > 0
