"""Tests for DVS task classes."""

import pytest

from repro.models import (
    DEFAULT_DVS_CLASSES,
    DVS_CLASS_1,
    DVS_CLASS_2,
    DVS_CLASS_3,
    DVS_MODE_SWITCH_DELAY_S,
    DVSClass,
)


class TestDVSClasses:
    def test_table_xi_delays(self):
        assert DVS_CLASS_1.execute_delay_s == 0.03
        assert DVS_CLASS_2.execute_delay_s == 0.01
        assert DVS_CLASS_3.execute_delay_s == 0.081578
        assert DVS_MODE_SWITCH_DELAY_S == 0.05

    def test_default_registry(self):
        assert set(DEFAULT_DVS_CLASSES) == {1, 2, 3}
        assert DEFAULT_DVS_CLASSES[2] is DVS_CLASS_2

    def test_transition_names(self):
        assert DVS_CLASS_1.transition_name == "DVS_1"
        assert DVS_CLASS_3.transition_name == "DVS_3"

    def test_total_service_time(self):
        assert DVS_CLASS_2.total_service_time() == pytest.approx(0.06)
        assert DVS_CLASS_2.total_service_time(0.0) == pytest.approx(0.01)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DVSClass(4, -0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DVS_CLASS_1.execute_delay_s = 1.0
