"""Tests for the Fig. 3 CPU Petri-net model."""

import pytest

from repro.analysis import boundedness, liveness_summary, p_invariants
from repro.des import CPUPowerStateSimulator, CPUStates
from repro.models import CPUPetriModel, build_cpu_petri_net


class TestStructure:
    def test_state_token_invariant(self):
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        invs = p_invariants(net)
        supports = [inv.support for inv in invs]
        assert frozenset({"Stand_By", "Power_Up", "Idle", "Active"}) in supports

    def test_state_places_one_bounded(self):
        # The buffer is unbounded, but the state token cycle is safe;
        # verify dynamically over a finite run instead of exhaustively.
        model = CPUPetriModel(1.0, 10.0, 0.1, 0.3)
        net = model.build()
        from repro.core import Simulation

        sim = Simulation(net, seed=1)
        bad = []
        sim.add_observer(
            lambda t, name, c, p: bad.append(name)
            if sum(
                sim.marking.count(pl)
                for pl in ("Stand_By", "Power_Up", "Idle", "Active")
            )
            != 1
            else None
        )
        sim.run(200.0)
        assert not bad

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_cpu_petri_net(0.0, 10.0, 0.1, 0.3)
        with pytest.raises(ValueError):
            build_cpu_petri_net(1.0, 10.0, -0.1, 0.3)

    def test_transitions_present(self):
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        for name in (
            "Arrival_Rate",
            "T1",
            "Power_Up_Delay",
            "T2",
            "Service_Rate",
            "Power_Down_Threshold",
        ):
            assert net.has_transition(name)

    def test_t1_priority_matches_table_i(self):
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        assert net.transition("T1").priority == 4
        assert net.transition("T2").priority == 1


class TestBehaviour:
    def test_fractions_sum_to_one(self):
        r = CPUPetriModel(1.0, 10.0, 0.1, 0.3).simulate(5000.0, seed=1)
        assert sum(r.fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_matches_des_ground_truth(self):
        """The core paper claim: Petri net tracks the event simulator."""
        for T, D in ((0.05, 0.001), (0.5, 0.3), (0.2, 10.0)):
            petri = CPUPetriModel(1.0, 10.0, T, D).simulate(
                20_000.0, seed=3, warmup=200.0
            )
            des = CPUPowerStateSimulator(
                1.0, 10.0, T, D, seed=3, warmup=200.0
            ).run(20_000.0)
            for state in CPUStates.ALL:
                assert petri.fraction(state) == pytest.approx(
                    des.fraction(state), abs=0.03
                ), f"state {state} at T={T}, D={D}"

    def test_zero_threshold_immediate_sleep(self):
        r = CPUPetriModel(1.0, 10.0, 0.0, 0.001).simulate(2000.0, seed=2)
        assert r.fraction(CPUStates.IDLE) == pytest.approx(0.0, abs=1e-9)

    def test_job_counters(self):
        r = CPUPetriModel(1.0, 10.0, 0.1, 0.3).simulate(2000.0, seed=4)
        assert r.jobs_arrived == pytest.approx(2000, rel=0.1)
        assert r.jobs_served <= r.jobs_arrived
        assert r.wakeups > 0

    def test_wakeups_decrease_with_threshold(self):
        w = [
            CPUPetriModel(1.0, 10.0, T, 0.001).simulate(3000.0, seed=5).wakeups
            for T in (0.001, 0.5, 2.0)
        ]
        assert w[0] > w[1] > w[2]

    def test_reproducible(self):
        a = CPUPetriModel(1.0, 10.0, 0.1, 0.3).simulate(1000.0, seed=6)
        b = CPUPetriModel(1.0, 10.0, 0.1, 0.3).simulate(1000.0, seed=6)
        assert a.fractions == b.fractions
