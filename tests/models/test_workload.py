"""Tests for workload generators."""

import pytest

from repro.core import PetriNet, Simulation, simulate
from repro.core.distributions import Deterministic
from repro.models import ClosedWorkload, OpenWorkload, TraceWorkload


def host_net():
    """A net with an event sink that consumes events after 0.5 s and a
    Wait place toggled by the service."""
    net = PetriNet("host")
    net.add_place("Wait", initial_tokens=1)
    net.add_place("Events")
    net.add_place("Busy")
    net.add_transition("start", inputs=["Wait", "Events"], outputs=["Busy"])
    net.add_transition("finish", Deterministic(0.5), inputs=["Busy"], outputs=["Wait"])
    return net


class TestOpenWorkload:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            OpenWorkload(0.0)

    def test_mean_interarrival(self):
        assert OpenWorkload(4.0).mean_interarrival() == 0.25

    def test_emits_at_rate_regardless_of_state(self):
        net = host_net()
        OpenWorkload(2.0).attach(net, "Events")
        result = simulate(net, horizon=2000.0, seed=1, warmup=50.0)
        assert result.throughput("T0") == pytest.approx(2.0, rel=0.05)

    def test_events_can_queue(self):
        net = host_net()
        OpenWorkload(10.0).attach(net, "Events")  # faster than service
        sim = Simulation(net, seed=2)
        max_q = [0]
        sim.add_observer(
            lambda t, n, c, p: max_q.__setitem__(
                0, max(max_q[0], sim.marking.count("Events"))
            )
        )
        sim.run(50.0)
        assert max_q[0] > 1


class TestClosedWorkload:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ClosedWorkload(-1.0)

    def test_waits_for_wait_place(self):
        net = host_net()
        ClosedWorkload(100.0, wait_place="Wait").attach(net, "Events")
        sim = Simulation(net, seed=3)
        max_q = [0]
        sim.add_observer(
            lambda t, n, c, p: max_q.__setitem__(
                0, max(max_q[0], sim.marking.count("Events"))
            )
        )
        sim.run(50.0)
        # even at rate 100 the guard throttles: never more than 1 queued
        assert max_q[0] <= 1

    def test_cycle_rate_bounded_by_service(self):
        net = host_net()
        ClosedWorkload(1000.0, wait_place="Wait").attach(net, "Events")
        result = simulate(net, horizon=500.0, seed=4, warmup=10.0)
        # cycle ≈ think(1/1000) + service(0.5) -> ~2 events/s
        assert result.throughput("T0") == pytest.approx(2.0, rel=0.1)


class TestTraceWorkload:
    def test_replays_gap_distribution(self):
        net = host_net()
        TraceWorkload([0.5, 1.5]).attach(net, "Events")
        result = simulate(net, horizon=4000.0, seed=5, warmup=50.0)
        # mean gap = 1.0 -> rate 1.0
        assert result.throughput("T0") == pytest.approx(1.0, rel=0.08)

    def test_mean_interarrival(self):
        assert TraceWorkload([1.0, 3.0]).mean_interarrival() == 2.0
