"""Tests for the declarative scenario schema (repro.scenarios.spec).

The two property classes mirror ``tests/integration/test_random_nets.py``:
Hypothesis generates valid specs and asserts the documented round-trip
law, then mutates/drops keys and asserts every rejection is a
``ScenarioError`` that *names the bad key* — the schema's contract.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.config import ExecutionConfig
from repro.scenarios import (
    SPEC_VERSION,
    SUPPORTED_VERSIONS,
    ScenarioError,
    ScenarioSpec,
    apply_overrides,
    load_scenario,
    parse_override,
)

FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def valid_spec_dict(draw):
    """A random valid raw spec mapping, params possibly partial."""
    model = draw(st.sampled_from(["fig", "table", "node-sweep", "validate", "network"]))
    params = {}
    if model == "fig":
        params["number"] = draw(st.sampled_from([4, 5, 6, 7, 8, 9, 14, 15]))
        if draw(st.booleans()):
            params["horizon"] = draw(st.floats(0.5, 100.0, allow_nan=False))
    elif model == "table":
        params["number"] = draw(st.sampled_from([4, 5, 6]))
    elif model == "node-sweep":
        if draw(st.booleans()):
            params["workload"] = draw(st.sampled_from(["closed", "open"]))
    elif model == "network":
        if draw(st.booleans()):
            params["topology"] = draw(st.sampled_from(["line", "star", "grid"]))
        if draw(st.booleans()):
            params["grid"] = [draw(st.integers(1, 8)), draw(st.integers(1, 8))]
        if draw(st.booleans()):
            params["sweep"] = draw(st.booleans())
    if draw(st.booleans()):
        params["seed"] = draw(st.integers(0, 10**6))
    execution = {}
    if draw(st.booleans()):
        execution["workers"] = draw(st.integers(1, 8))
    if draw(st.booleans()):
        execution["replications"] = draw(st.integers(1, 8))
    if draw(st.booleans()):
        execution["engine"] = draw(st.sampled_from(["interpreted", "vectorized"]))
    data = {
        "version": SPEC_VERSION,
        "name": draw(st.sampled_from(["a", "spec-b", "run_3"])),
        "model": model,
        "params": params,
    }
    if execution or draw(st.booleans()):
        data["execution"] = execution
    if draw(st.booleans()):
        data["outputs"] = {"format": "text"}
    return data


class TestRoundTrip:
    @FUZZ_SETTINGS
    @given(data=valid_spec_dict())
    def test_from_dict_to_dict_round_trips(self, data):
        spec = ScenarioSpec.from_dict(data)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    @FUZZ_SETTINGS
    @given(data=valid_spec_dict())
    def test_to_dict_is_json_serialisable(self, data):
        spec = ScenarioSpec.from_dict(data)
        json.dumps(spec.to_dict())

    @FUZZ_SETTINGS
    @given(data=valid_spec_dict())
    def test_canonical_dict_ignores_execution(self, data):
        spec = ScenarioSpec.from_dict(data)
        heavier = dict(data)
        heavier["execution"] = {"workers": 8, "engine": "vectorized"}
        heavier["name"] = "renamed"
        assert (
            ScenarioSpec.from_dict(heavier).canonical_dict()
            == spec.canonical_dict()
        )


#: (mutation, substring the error must contain) — every entry corrupts
#: one key of a valid spec; the diagnostic must name that key.
_MUTATIONS = [
    (lambda d: d.update(version=99), "version"),
    (lambda d: d.update(name=""), "name"),
    (lambda d: d.update(model="quantum"), "model"),
    (lambda d: d.update(bogus=1), "bogus"),
    (lambda d: d.pop("name"), "name"),
    (lambda d: d.pop("model"), "model"),
    (lambda d: d["params"].update(number=3), "params.number"),
    (lambda d: d["params"].update(horizon=-1.0), "params.horizon"),
    (lambda d: d["params"].update(seed="twenty"), "params.seed"),
    (lambda d: d["params"].update(mystery=1), "params.mystery"),
    (lambda d: d["params"].pop("number"), "params.number"),
    (lambda d: d.update(execution={"workers": 0}), "workers"),
    (lambda d: d.update(execution={"engine": "turbo"}), "engine"),
    (lambda d: d.update(execution={"warp": 9}), "warp"),
    (lambda d: d.update(outputs={"format": "xml"}), "outputs.format"),
    (lambda d: d.update(outputs={"sink": "s3"}), "outputs.sink"),
    (lambda d: d.update(smoke={"engine.workers": 1}), "smoke.engine.workers"),
]


class TestRejectionsNameTheKey:
    def base(self):
        return {
            "version": SPEC_VERSION,
            "name": "fig14",
            "model": "fig",
            "params": {"number": 14, "horizon": 2.0, "seed": 2010},
        }

    def test_base_is_valid(self):
        ScenarioSpec.from_dict(self.base())

    @pytest.mark.parametrize(
        ("mutate", "expected"),
        _MUTATIONS,
        ids=[expected for _, expected in _MUTATIONS],
    )
    def test_mutated_spec_rejected_with_key_named(self, mutate, expected):
        data = self.base()
        mutate(data)
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict(data)
        assert expected in str(excinfo.value)

    @FUZZ_SETTINGS
    @given(data=valid_spec_dict(), bad_key=st.sampled_from(
        ["params", "execution", "outputs"]
    ), junk=st.sampled_from(["x", 3, [1]]))
    def test_fuzzed_junk_key_rejected_naming_it(self, data, bad_key, junk):
        data = dict(data)
        block = dict(data.get(bad_key) or {})
        block[f"zz_{junk!r}"[:6]] = junk
        data[bad_key] = block
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict(data)
        assert bad_key in str(excinfo.value) or "zz" in str(excinfo.value)


class TestDefaultsAndNormalisation:
    def test_params_defaults_filled(self):
        spec = ScenarioSpec.from_dict(
            {"version": 1, "name": "n", "model": "fig", "params": {"number": 14}}
        )
        assert spec.params["seed"] == 2010
        assert spec.params["horizon"] is None

    def test_network_grid_string_normalised(self):
        spec = ScenarioSpec.from_dict(
            {
                "version": 1,
                "name": "n",
                "model": "network",
                "params": {"grid": "4x3"},
            }
        )
        assert spec.params["grid"] == (4, 3)
        # and to_dict() re-emits plain JSON
        assert spec.to_dict()["params"]["grid"] == [4, 3]

    def test_execution_mapping_becomes_config(self):
        spec = ScenarioSpec.from_dict(
            {
                "version": 1,
                "name": "n",
                "model": "validate",
                "execution": {"workers": 2},
            }
        )
        assert spec.execution == ExecutionConfig(workers=2)


class TestOverrides:
    def test_parse_override_json_values(self):
        assert parse_override("params.horizon=2.5") == ("params.horizon", 2.5)
        assert parse_override("params.grid=[3,3]") == ("params.grid", [3, 3])
        assert parse_override("execution.backend=processes") == (
            "execution.backend",
            "processes",
        )

    def test_parse_override_requires_equals(self):
        with pytest.raises(ScenarioError, match="KEY=VALUE"):
            parse_override("params.horizon")

    def test_apply_overrides_does_not_mutate(self):
        data = {"params": {"horizon": 900.0}}
        out = apply_overrides(data, ["params.horizon=2.0"])
        assert out["params"]["horizon"] == 2.0
        assert data["params"]["horizon"] == 900.0

    def test_override_through_scalar_named(self):
        with pytest.raises(ScenarioError, match="params.horizon"):
            apply_overrides(
                {"params": {"horizon": 900.0}}, ["params.horizon.x=1"]
            )

    def test_with_overrides_revalidates(self):
        spec = ScenarioSpec.from_dict(
            {"version": 1, "name": "n", "model": "fig", "params": {"number": 14}}
        )
        assert spec.with_overrides(["params.number=15"]).params["number"] == 15
        with pytest.raises(ScenarioError, match="params.number"):
            spec.with_overrides(["params.number=3"])


class TestLoadScenario:
    def test_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {"version": 1, "name": "n", "model": "validate", "params": {}}
            )
        )
        assert load_scenario(path).model == "validate"

    def test_missing_file_is_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text("x = 1")
        with pytest.raises(ScenarioError, match=".toml"):
            load_scenario(path)

    def test_smoke_block_applied_then_overrides_win(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "name": "n",
                    "model": "fig",
                    "params": {"number": 14, "horizon": 900.0},
                    "smoke": {"params.horizon": 2.0},
                }
            )
        )
        assert load_scenario(path).params["horizon"] == 900.0
        assert load_scenario(path, smoke=True).params["horizon"] == 2.0
        spec = load_scenario(
            path, overrides=["params.horizon=5.0"], smoke=True
        )
        assert spec.params["horizon"] == 5.0

    def test_gallery_files_validate(self):
        # Every shipped scenario must parse, validate, and carry a
        # usable smoke shape (PyYAML is present in CI).
        pytest.importorskip("yaml")
        from pathlib import Path

        gallery = Path(__file__).resolve().parents[2] / "scenarios"
        files = sorted(gallery.glob("*.yaml"))
        assert len(files) >= 4
        for path in files:
            spec = load_scenario(path)
            smoked = load_scenario(path, smoke=True)
            assert smoked.model == spec.model


class TestSchemaVersions:
    """The v1/v2 compatibility contract of the versioned schema."""

    def _network(self, version, **params):
        return {
            "version": version,
            "name": "n",
            "model": "network",
            "params": params,
        }

    def test_current_version_and_support_window(self):
        assert SPEC_VERSION == 2
        assert SUPPORTED_VERSIONS == (1, 2)

    def test_v2_keys_accepted_with_defaults(self):
        spec = ScenarioSpec.from_dict(
            self._network(2, topology="geometric", nodes=50)
        )
        assert spec.params["failure_rate"] == 0.0
        assert spec.params["duty_spread"] == 0.0
        assert spec.params["traffic"] == "poisson"
        assert spec.params["radius"] is None

    def test_v1_spec_gets_no_v2_defaults(self):
        # A version-1 file must round-trip byte-identically, so the
        # v2-only keys may not silently appear in its params.
        spec = ScenarioSpec.from_dict(self._network(1, topology="line"))
        for key in ("failure_rate", "duty_spread", "traffic", "radius"):
            assert key not in spec.params
        assert spec.to_dict()["version"] == 1

    def test_v2_key_under_v1_names_key_and_version(self):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict(self._network(1, failure_rate=0.01))
        message = str(excinfo.value)
        assert "params.failure_rate" in message
        assert "version 2" in message
        assert "declares version 1" in message

    def test_v2_topologies_rejected_under_v1(self):
        with pytest.raises(ScenarioError, match="topology"):
            ScenarioSpec.from_dict(self._network(1, topology="geometric"))

    def test_future_version_rejected_naming_the_window(self):
        with pytest.raises(ScenarioError, match="not supported"):
            ScenarioSpec.from_dict(self._network(3, topology="line"))

    def test_v2_values_still_validated(self):
        with pytest.raises(ScenarioError, match="params.traffic"):
            ScenarioSpec.from_dict(self._network(2, traffic="lumpy"))
        with pytest.raises(ScenarioError, match="params.duty_spread"):
            ScenarioSpec.from_dict(self._network(2, duty_spread=2.0))
