"""Integration: scenario runs are byte-identical to flag-spelled runs.

Each gallery scenario's ``--smoke`` shape is executed through
``repro.cli scenario run`` and through the equivalent flag-spelled
subcommand recorded in the scenario's header comment; stdout must match
byte for byte — across both engines and both the serial and processes
backends — and a scenario run must share the result store (same
task keys) with a flag run.
"""

from pathlib import Path

import pytest

from repro.cli import main

pytest.importorskip("yaml", reason="gallery scenarios are YAML")

GALLERY = Path(__file__).resolve().parents[2] / "scenarios"


def run_cli(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


#: (scenario file, extra scenario args, equivalent flag invocation)
SMOKE_EQUIVALENTS = [
    (
        "fig14.yaml",
        [],
        ["fig", "14", "--horizon", "2.0", "--replications", "2"],
    ),
    (
        "fig15.yaml",
        [],
        ["fig", "15", "--horizon", "2.0", "--replications", "2"],
    ),
    (
        "validation.yaml",
        [],
        ["validate"],
    ),
    (
        "grid100.yaml",
        [],
        [
            "network",
            "--topology",
            "grid",
            "--grid",
            "3x3",
            "--threshold",
            "0.01",
            "--horizon",
            "5.0",
            "--workers",
            "2",
            "--shards",
            "2",
        ],
    ),
]


class TestGalleryBitIdentity:
    @pytest.mark.parametrize(
        ("scenario", "extra", "flags"),
        SMOKE_EQUIVALENTS,
        ids=[s for s, _, _ in SMOKE_EQUIVALENTS],
    )
    def test_smoke_scenario_matches_flags(self, capsys, scenario, extra, flags):
        scenario_out = run_cli(
            capsys,
            ["scenario", "run", str(GALLERY / scenario), "--smoke", *extra],
        )
        flag_out = run_cli(capsys, flags)
        assert scenario_out == flag_out

    @pytest.mark.parametrize("engine", ["interpreted", "vectorized"])
    def test_engines_match_flags(self, capsys, engine):
        scenario_out = run_cli(
            capsys,
            [
                "scenario",
                "run",
                str(GALLERY / "fig14.yaml"),
                "--smoke",
                "--override",
                f"execution.engine={engine}",
            ],
        )
        flag_out = run_cli(
            capsys,
            [
                "fig",
                "14",
                "--horizon",
                "2.0",
                "--replications",
                "2",
                "--engine",
                engine,
            ],
        )
        assert scenario_out == flag_out

    @pytest.mark.parametrize("backend", ["local", "processes"])
    def test_backends_match_flags(self, capsys, backend):
        scenario_out = run_cli(
            capsys,
            [
                "scenario",
                "run",
                str(GALLERY / "fig14.yaml"),
                "--smoke",
                "--override",
                f"execution.backend={backend}",
                "--override",
                "execution.workers=2",
            ],
        )
        flag_out = run_cli(
            capsys,
            [
                "fig",
                "14",
                "--horizon",
                "2.0",
                "--replications",
                "2",
                "--backend",
                backend,
                "--workers",
                "2",
            ],
        )
        assert scenario_out == flag_out


class TestStoreSharing:
    def test_scenario_run_hits_flag_run_entries(self, capsys, tmp_path):
        """Same task keys: a flag run warms the store for a scenario run."""
        from repro.runtime.store import ResultStore

        store_dir = str(tmp_path / "store")
        flag_out = run_cli(
            capsys,
            [
                "fig",
                "14",
                "--horizon",
                "2.0",
                "--replications",
                "2",
                "--store",
                store_dir,
            ],
        )
        cold = ResultStore(store_dir).stats()
        assert cold.entries > 0
        assert cold.misses == cold.entries
        scenario_out = run_cli(
            capsys,
            [
                "scenario",
                "run",
                str(GALLERY / "fig14.yaml"),
                "--smoke",
                "--override",
                f"execution.store_dir={store_dir}",
            ],
        )
        assert scenario_out == flag_out
        warm = ResultStore(store_dir).stats()
        assert warm.entries == cold.entries  # nothing new simulated
        assert warm.hits >= cold.entries  # every entry served the rerun

    def test_canonical_dict_shared_across_spellings(self):
        """Two spellings of one run canonicalise (and hash) identically."""
        from repro.scenarios import load_scenario
        from repro.runtime.store import canonical_json

        json_spec = load_scenario(
            GALLERY / "fig14.yaml", smoke=True
        ).with_overrides(["execution.workers=8", "name=renamed"])
        yaml_spec = load_scenario(GALLERY / "fig14.yaml", smoke=True)
        assert canonical_json(json_spec.canonical_dict()) == canonical_json(
            yaml_spec.canonical_dict()
        )
