"""Tests for precision-driven simulation."""

import pytest

from repro.core import Exponential, PetriNet, simulate_to_precision


def mm1_net(lam=1.0, mu=2.0):
    net = PetriNet("mm1")
    net.add_place("src", initial_tokens=1)
    net.add_place("q")
    net.add_transition("arrive", Exponential(lam), inputs=["src"], outputs=["src", "q"])
    net.add_transition("serve", Exponential(mu), inputs=["q"])
    return net


def queue_signal(view):
    return float(view.count("q"))


class TestSimulateToPrecision:
    def test_reaches_loose_target_quickly(self):
        pr = simulate_to_precision(
            mm1_net(),
            queue_signal,
            rel_half_width=0.25,
            initial_horizon=2000.0,
            max_horizon=64_000.0,
            seed=3,
        )
        assert pr.achieved
        assert pr.interval.relative_half_width() <= 0.25
        # M/M/1 at rho=0.5: L = 1.0
        assert pr.estimate == pytest.approx(1.0, abs=0.35)

    def test_tighter_target_needs_longer_horizon(self):
        loose = simulate_to_precision(
            mm1_net(), queue_signal,
            rel_half_width=0.5, initial_horizon=1000.0,
            max_horizon=256_000.0, seed=5,
        )
        tight = simulate_to_precision(
            mm1_net(), queue_signal,
            rel_half_width=0.05, initial_horizon=1000.0,
            max_horizon=256_000.0, seed=5,
        )
        assert tight.horizon >= loose.horizon
        assert tight.attempts >= loose.attempts

    def test_gives_up_at_max_horizon(self):
        pr = simulate_to_precision(
            mm1_net(), queue_signal,
            rel_half_width=0.001,  # unreasonably tight
            initial_horizon=500.0,
            max_horizon=2000.0,
            seed=7,
        )
        assert not pr.achieved
        assert pr.horizon == 2000.0
        # still returns a usable interval
        assert pr.interval.mean > 0

    def test_estimate_improves_with_precision(self):
        tight = simulate_to_precision(
            mm1_net(), queue_signal,
            rel_half_width=0.05,
            initial_horizon=4000.0,
            max_horizon=512_000.0,
            seed=11,
        )
        assert tight.achieved
        assert tight.estimate == pytest.approx(1.0, abs=0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_to_precision(mm1_net(), queue_signal, rel_half_width=0.0)
        with pytest.raises(ValueError):
            simulate_to_precision(
                mm1_net(), queue_signal, initial_horizon=100.0, max_horizon=50.0
            )
        with pytest.raises(ValueError):
            simulate_to_precision(
                mm1_net(), queue_signal, warmup_fraction=1.0
            )
