"""Tests for reset-arc semantics."""

import pytest

from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    ResetArc,
    Simulation,
    simulate,
    tokens_gt,
)
from repro.core.errors import ArcError, UnknownElementError


def crash_net(crash_delay=5.0):
    """Jobs queue; a periodic 'crash' flushes the queue."""
    net = PetriNet("crash")
    net.add_place("src", initial_tokens=1)
    net.add_place("q")
    net.add_place("crashes")
    net.add_place("clock", initial_tokens=1)
    net.add_transition(
        "arrive", Deterministic(1.0), inputs=["src"], outputs=["src", "q"]
    )
    net.add_transition(
        "crash",
        Deterministic(crash_delay),
        inputs=["clock"],
        outputs=["clock", "crashes"],
        resets=["q"],
    )
    return net


class TestResetSemantics:
    def test_queue_flushed_on_fire(self):
        # Arrivals at 1..4 queue.  At t=5 'arrive' and 'crash' tie;
        # the calendar's deterministic rank (timed-transition definition
        # order) fires 'arrive' first, so the crash flushes all five.
        result = simulate(crash_net(5.0), horizon=5.5)
        assert result.final_marking_counts["q"] == 0
        assert result.final_marking_counts["crashes"] == 1

    def test_queue_refills_after_crash(self):
        # crash at 5 flushes 1..5 (arrival #5 wins the tie, see above);
        # arrivals 6, 7 remain at t=7.5
        result = simulate(crash_net(5.0), horizon=7.5)
        assert result.final_marking_counts["q"] == 2

    def test_reset_does_not_affect_enabling(self):
        # crash fires even when q is empty
        net = crash_net(0.5)
        result = simulate(net, horizon=0.6)
        assert result.final_marking_counts["crashes"] == 1

    def test_flushed_tokens_reported_to_observers(self):
        net = crash_net(3.5)
        sim = Simulation(net)
        flushed = []
        sim.add_observer(
            lambda t, name, consumed, produced: flushed.append(
                len(consumed.get("q", []))
            )
            if name == "crash"
            else None
        )
        sim.run(4.0)
        assert flushed == [3]  # arrivals at 1,2,3 flushed at 3.5

    def test_reset_then_output_to_same_place(self):
        # reset + output: only the new token survives
        net = PetriNet()
        net.add_place("q", initial_tokens=4)
        net.add_place("go", initial_tokens=1)
        net.add_transition(
            "refresh", Deterministic(1.0), inputs=["go"], outputs=["q"],
            resets=["q"],
        )
        result = simulate(net, horizon=2.0)
        assert result.final_marking_counts["q"] == 1


class TestResetConstruction:
    def test_reset_arc_object_spec(self):
        net = PetriNet()
        net.add_place("a", initial_tokens=1)
        net.add_place("b")
        t = net.add_transition(
            "t", Deterministic(1.0), inputs=["a"], resets=[ResetArc("b")]
        )
        assert t.resets[0].place == "b"

    def test_unknown_place_rejected(self):
        net = PetriNet()
        net.add_place("a", initial_tokens=1)
        with pytest.raises(UnknownElementError):
            net.add_transition("t", Deterministic(1.0), inputs=["a"], resets=["ghost"])

    def test_duplicate_reset_rejected(self):
        net = PetriNet()
        net.add_place("a", initial_tokens=1)
        net.add_place("b")
        with pytest.raises(ArcError):
            net.add_transition(
                "t", Deterministic(1.0), inputs=["a"], resets=["b", "b"]
            )

    def test_bad_spec_rejected(self):
        net = PetriNet()
        net.add_place("a", initial_tokens=1)
        with pytest.raises(ArcError):
            net.add_transition("t", Deterministic(1.0), inputs=["a"], resets=[42])

    def test_export_includes_resets(self):
        from repro.core import net_to_dict, net_to_dot

        net = crash_net()
        d = net_to_dict(net)
        crash = next(t for t in d["transitions"] if t["name"] == "crash")
        assert crash["resets"] == ["q"]
        assert "arrowhead=diamond" in net_to_dot(net)

    def test_reachability_honours_resets(self):
        from repro.analysis import build_reachability_graph

        net = PetriNet()
        net.add_place("q", initial_tokens=3)
        net.add_place("trigger", initial_tokens=1)
        net.add_place("done")
        net.add_transition(
            "flush", Exponential(1.0), inputs=["trigger"], outputs=["done"],
            resets=["q"],
        )
        rg = build_reachability_graph(net)
        final = [
            counts
            for sig, counts in (
                (n, rg.counts_of(n)) for n in rg.graph.nodes
            )
            if counts["done"] == 1
        ]
        assert final and all(c["q"] == 0 for c in final)
