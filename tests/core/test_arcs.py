"""Unit tests for arcs and firing contexts."""

import numpy as np
import pytest

from repro.core.arcs import FiringContext, InhibitorArc, InputArc, OutputArc
from repro.core.errors import ArcError
from repro.core.tokens import Token


def make_ctx(consumed=None, time=1.0):
    return FiringContext(
        time=time,
        consumed=consumed or {},
        marking=None,
        rng=np.random.default_rng(0),
        transition="t",
    )


class TestInputArc:
    def test_defaults(self):
        arc = InputArc("P")
        assert arc.multiplicity == 1
        assert arc.token_filter is None

    def test_invalid_multiplicity(self):
        with pytest.raises(ArcError):
            InputArc("P", 0)


class TestInhibitorArc:
    def test_defaults(self):
        arc = InhibitorArc("P")
        assert arc.multiplicity == 1

    def test_invalid_multiplicity(self):
        with pytest.raises(ArcError):
            InhibitorArc("P", 0)


class TestOutputArc:
    def test_plain_tokens(self):
        arc = OutputArc("P", 2)
        toks = arc.make_tokens(make_ctx())
        assert len(toks) == 2
        assert all(t.color is None for t in toks)
        assert all(t.created_at == 1.0 for t in toks)

    def test_fixed_color(self):
        arc = OutputArc("P", color=3)
        toks = arc.make_tokens(make_ctx())
        assert toks[0].color == 3

    def test_producer_called_per_token(self):
        calls = []

        def producer(ctx):
            calls.append(ctx.time)
            return len(calls)

        arc = OutputArc("P", 3, producer=producer)
        toks = arc.make_tokens(make_ctx())
        assert [t.color for t in toks] == [1, 2, 3]

    def test_color_and_producer_mutually_exclusive(self):
        with pytest.raises(ArcError):
            OutputArc("P", color=1, producer=lambda ctx: 2)

    def test_forwarding_single_colored_token(self):
        ctx = make_ctx({"A": [Token(7)]})
        arc = OutputArc("P")
        assert arc.make_tokens(ctx)[0].color == 7

    def test_no_forwarding_with_two_colored_tokens(self):
        ctx = make_ctx({"A": [Token(7)], "B": [Token(8)]})
        arc = OutputArc("P")
        assert arc.make_tokens(ctx)[0].color is None

    def test_no_forwarding_for_multiplicity_over_one(self):
        ctx = make_ctx({"A": [Token(7)]})
        arc = OutputArc("P", 2)
        assert all(t.color is None for t in arc.make_tokens(ctx))

    def test_colorless_consumed_not_forwarded(self):
        ctx = make_ctx({"A": [Token(None)]})
        arc = OutputArc("P")
        assert arc.make_tokens(ctx)[0].color is None

    def test_invalid_multiplicity(self):
        with pytest.raises(ArcError):
            OutputArc("P", 0)


class TestFiringContext:
    def test_consumed_colors(self):
        ctx = make_ctx({"A": [Token(1), Token(2)], "B": [Token(3)]})
        assert sorted(ctx.consumed_colors()) == [1, 2, 3]

    def test_first_color(self):
        ctx = make_ctx({"A": [Token(5)]})
        assert ctx.first_color() == 5

    def test_first_color_default(self):
        assert make_ctx().first_color("dflt") == "dflt"
