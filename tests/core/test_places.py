"""Unit tests for places."""

import pytest

from repro.core.places import Place
from repro.core.tokens import Token


class TestPlace:
    def test_basic(self):
        p = Place("P", 2)
        assert p.name == "P"
        assert p.initial_count == 2
        assert p.capacity is None

    def test_colored_initial_marking(self):
        p = Place("P", [Token(1), Token(2)])
        assert p.initial_colors() == [1, 2]

    def test_fresh_initial_returns_new_instances(self):
        p = Place("P", [Token("x")])
        a = p.fresh_initial()
        b = p.fresh_initial()
        assert a[0] is not b[0]
        assert a[0].color == "x"
        assert a[0].created_at == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Place("P", 3, capacity=2)
        with pytest.raises(ValueError):
            Place("P", capacity=-1)

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Place("P", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Place("")

    def test_description_carried(self):
        p = Place("P", description="buffer")
        assert p.description == "buffer"
