"""Focused tests for the three timed-transition memory policies."""

import pytest

from repro.core import (
    Deterministic,
    Exponential,
    MemoryPolicy,
    PetriNet,
    simulate,
    tokens_eq,
)


def interfering_net(policy: MemoryPolicy):
    """A Det(1.0) transition under ``policy`` racing a 0.4 s ticker.

    The ticker's firings perturb the marking every 0.4 s without ever
    disabling the deterministic transition.
    """
    net = PetriNet("race")
    net.add_place("A", initial_tokens=1)
    net.add_place("B")
    net.add_place("C", initial_tokens=1)
    net.add_place("ticks")
    net.add_transition(
        "slow", Deterministic(1.0), inputs=["A"], outputs=["B"], memory=policy
    )
    net.add_transition(
        "tick", Deterministic(0.4), inputs=["C"], outputs=["C", "ticks"]
    )
    return net


class TestResamplePolicy:
    def test_resample_starves_under_interference(self):
        # Race resampling redraws the clock after every firing of any
        # transition; a 0.4 s ticker therefore perpetually resets the
        # 1.0 s deterministic timer and it never fires.
        result = simulate(interfering_net(MemoryPolicy.RESAMPLE), horizon=10.0)
        assert result.final_marking_counts["B"] == 0
        # 0.4 s ticks over 10 s; float accumulation may push the final
        # tick just past the horizon.
        assert result.final_marking_counts["ticks"] in (24, 25)

    def test_enabling_policy_immune_to_interference(self):
        # Enabling memory only resets on disabling, and the ticker never
        # disables the slow transition: it fires on schedule at t = 1.
        result = simulate(interfering_net(MemoryPolicy.ENABLING), horizon=10.0)
        assert result.final_marking_counts["B"] == 1
        assert result.occupancy("B") == pytest.approx(0.9)

    def test_age_policy_immune_to_interference(self):
        result = simulate(interfering_net(MemoryPolicy.AGE), horizon=10.0)
        assert result.final_marking_counts["B"] == 1

    def test_resample_exponential_is_statistically_invisible(self):
        # Resampling an exponential clock changes nothing (memoryless):
        # the firing-time distribution is identical either way.
        def mean_firings(policy, seed):
            net = PetriNet()
            net.add_place("A", initial_tokens=1)
            net.add_place("count")
            net.add_place("C", initial_tokens=1)
            net.add_transition(
                "exp", Exponential(1.0), inputs=["A"], outputs=["A", "count"],
                memory=policy,
            )
            net.add_transition(
                "tick", Deterministic(0.3), inputs=["C"], outputs=["C"]
            )
            r = simulate(net, horizon=4000.0, seed=seed)
            return r.final_marking_counts["count"] / 4000.0

        enabling = sum(mean_firings(MemoryPolicy.ENABLING, s) for s in range(5)) / 5
        resample = sum(mean_firings(MemoryPolicy.RESAMPLE, s) for s in range(5)) / 5
        assert enabling == pytest.approx(1.0, abs=0.05)
        assert resample == pytest.approx(1.0, abs=0.05)


class TestAgePolicyDetail:
    def test_age_accumulates_across_multiple_preemptions(self):
        # PDT-style guard preempted twice; the 1.5 s of work is spread
        # over three enabled windows under age memory.
        net = PetriNet()
        net.add_place("Idle", initial_tokens=1)
        net.add_place("Sleep")
        net.add_place("Job")
        net.add_place("Gen", initial_tokens=1)
        net.add_place("burst_count")
        # Jobs arrive at t=1 and t=3 (deterministic 1s gap, 2 jobs);
        # each takes 1 s to serve.
        net.add_transition(
            "arrive", Deterministic(1.0), inputs=["Gen"],
            outputs=[("Job", 1), "burst_count"],
            guard=tokens_eq("burst_count", 0),
        )
        net.add_transition(
            "arrive2", Deterministic(2.0), inputs=["burst_count"],
            outputs=["Job"],
        )
        net.add_transition("serve", Deterministic(1.0), inputs=["Job"])
        net.add_transition(
            "pdt", Deterministic(2.5), inputs=["Idle"], outputs=["Sleep"],
            guard=tokens_eq("Job", 0), memory=MemoryPolicy.AGE,
        )
        result = simulate(net, horizon=20.0)
        # Timeline: enabled [0,1) (1.0 consumed), job until 2; enabled
        # [2,3) (1.0 more), job until 4; enabled from 4, fires at 4.5.
        assert result.final_marking_counts["Sleep"] == 1
        assert result.occupancy("Sleep") == pytest.approx((20 - 4.5) / 20)
