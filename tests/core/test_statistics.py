"""Unit tests for time-weighted statistics and batch means."""

import math

import numpy as np
import pytest

from repro.core.statistics import (
    BatchMeans,
    ConfidenceInterval,
    PredicateStatistic,
    StatisticsCollector,
    TimeWeightedAccumulator,
    TransitionCounter,
)


class TestTimeWeightedAccumulator:
    def test_constant_signal(self):
        acc = TimeWeightedAccumulator()
        acc.update(0.0, 2.0)
        acc.finalize(10.0)
        assert acc.time_average() == pytest.approx(2.0)
        assert acc.fraction_nonzero() == pytest.approx(1.0)

    def test_piecewise_signal(self):
        acc = TimeWeightedAccumulator()
        acc.update(0.0, 0.0)
        acc.update(4.0, 2.0)   # 0 for [0,4)
        acc.finalize(10.0)     # 2 for [4,10)
        assert acc.time_average() == pytest.approx(12.0 / 10.0)
        assert acc.fraction_nonzero() == pytest.approx(0.6)

    def test_warmup_discards_transient(self):
        acc = TimeWeightedAccumulator(warmup=5.0)
        acc.update(0.0, 100.0)
        acc.update(5.0, 1.0)
        acc.finalize(10.0)
        assert acc.time_average() == pytest.approx(1.0)

    def test_warmup_straddling_interval(self):
        acc = TimeWeightedAccumulator(warmup=5.0)
        acc.update(0.0, 2.0)
        acc.finalize(10.0)  # value 2 over [0,10) but only [5,10) counts
        assert acc.time_average() == pytest.approx(2.0)
        assert acc.observed_time == pytest.approx(5.0)

    def test_time_backwards_rejected(self):
        acc = TimeWeightedAccumulator()
        acc.update(5.0, 1.0)
        with pytest.raises(ValueError):
            acc.update(4.0, 1.0)

    def test_maximum_tracked(self):
        acc = TimeWeightedAccumulator()
        acc.update(0.0, 1.0)
        acc.update(1.0, 5.0)
        acc.update(2.0, 0.0)
        assert acc.maximum() == 5.0

    def test_empty_observation(self):
        acc = TimeWeightedAccumulator()
        assert acc.time_average() == 0.0
        assert acc.fraction_nonzero() == 0.0


class TestPredicateStatistic:
    def test_probability(self):
        class M:
            def __init__(self):
                self.flag = False

        m = M()
        stat = PredicateStatistic("flag", lambda mm: mm.flag)
        stat.update(0.0, m)
        m.flag = True
        stat.update(4.0, m)
        m.flag = False
        stat.update(8.0, m)
        stat.acc.finalize(10.0)
        assert stat.probability() == pytest.approx(0.4)


class TestTransitionCounter:
    def test_count_and_throughput(self):
        c = TransitionCounter()
        for t in (1.0, 2.0, 3.0):
            c.record(t)
        assert c.count == 3
        assert c.throughput(10.0) == pytest.approx(0.3)

    def test_warmup_excludes_early_firings(self):
        c = TransitionCounter(warmup=5.0)
        c.record(1.0)
        c.record(6.0)
        assert c.count == 1
        assert c.throughput(10.0) == pytest.approx(1 / 5.0)

    def test_zero_horizon(self):
        c = TransitionCounter()
        assert c.throughput(0.0) == 0.0


class TestConfidenceInterval:
    def test_relative_half_width_ordinary(self):
        ci = ConfidenceInterval(mean=4.0, half_width=1.0, confidence=0.95, batches=8)
        assert ci.relative_half_width() == pytest.approx(0.25)

    def test_degenerate_zero_interval_is_perfectly_precise(self):
        # 0 ± 0 (a constant-zero metric) must satisfy any relative-width
        # stopping rule, not report inf.
        ci = ConfidenceInterval(mean=0.0, half_width=0.0, confidence=0.95, batches=8)
        assert ci.relative_half_width() == 0.0

    def test_zero_half_width_nonzero_mean(self):
        ci = ConfidenceInterval(mean=5.0, half_width=0.0, confidence=0.95, batches=8)
        assert ci.relative_half_width() == 0.0

    def test_zero_mean_nonzero_half_width_still_inf(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.0, confidence=0.95, batches=8)
        assert ci.relative_half_width() == math.inf


class TestBatchMeans:
    def test_constant_signal_zero_variance(self):
        bm = BatchMeans(horizon=100.0, n_batches=10)
        bm.update(0.0, 3.0)
        bm.finalize()
        ci = bm.interval()
        assert ci.mean == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(0.0, abs=1e-12)
        assert ci.contains(3.0)

    def test_alternating_signal(self):
        bm = BatchMeans(horizon=100.0, n_batches=4)
        t = 0.0
        v = 0.0
        while t < 100.0:
            bm.update(t, v)
            v = 1.0 - v
            t += 0.5
        bm.finalize()
        ci = bm.interval()
        assert ci.mean == pytest.approx(0.5, abs=0.01)

    def test_batch_attribution_across_boundaries(self):
        bm = BatchMeans(horizon=10.0, n_batches=2)
        bm.update(0.0, 1.0)   # value 1 over [0, 10)
        bm.finalize()
        means = bm.batch_means()
        assert means.tolist() == pytest.approx([1.0, 1.0])

    def test_warmup(self):
        bm = BatchMeans(horizon=20.0, warmup=10.0, n_batches=2)
        bm.update(0.0, 99.0)
        bm.update(10.0, 1.0)
        bm.finalize()
        assert bm.batch_means().tolist() == pytest.approx([1.0, 1.0])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchMeans(horizon=10.0, n_batches=1)
        with pytest.raises(ValueError):
            BatchMeans(horizon=5.0, warmup=5.0)

    def test_truncated_run_drops_empty_batches(self):
        # A run that dies at t=4 of a 10 s horizon leaves the last
        # three batches unobserved; they must not enter the estimate as
        # fabricated 0.0 samples (which dragged the mean to 1.2 and
        # fabricated variance before the fix).
        bm = BatchMeans(horizon=10.0, n_batches=5)
        bm.update(0.0, 3.0)
        bm.update(4.0, 3.0)
        assert bm.batch_means().tolist() == pytest.approx([3.0, 3.0])
        ci = bm.interval()
        assert ci.mean == pytest.approx(3.0)
        assert ci.batches == 2

    def test_all_batches_empty_gives_unknown_interval(self):
        bm = BatchMeans(horizon=10.0, n_batches=5)
        ci = bm.interval()
        assert ci.batches == 0
        assert ci.mean == 0.0
        assert math.isinf(ci.half_width)

    def test_full_run_still_reports_all_batches(self):
        bm = BatchMeans(horizon=10.0, n_batches=5)
        bm.update(0.0, 1.0)
        bm.finalize()
        assert len(bm.batch_means()) == 5
        assert bm.interval().batches == 5

    def test_confidence_interval_width_shrinks_with_confidence(self):
        rng = np.random.default_rng(0)
        bm = BatchMeans(horizon=100.0, n_batches=20)
        t = 0.0
        while t < 100.0:
            bm.update(t, float(rng.uniform(0, 2)))
            t += 0.1
        bm.finalize()
        narrow = bm.interval(0.8)
        wide = bm.interval(0.99)
        assert narrow.half_width < wide.half_width
        assert narrow.relative_half_width() > 0


class TestStatisticsCollector:
    def test_end_to_end(self):
        col = StatisticsCollector(["A", "B"], ["t1"], warmup=0.0)

        class View:
            pass

        view = View()
        col.initialize(view, {"A": 1, "B": 0})
        col.on_transition_fired(2.0, "t1")
        col.on_marking_change(2.0, view, {"A": 0, "B": 1})
        col.finalize(4.0)
        assert col.mean_tokens("A") == pytest.approx(0.5)
        assert col.occupancy("B") == pytest.approx(0.5)
        assert col.firing_count("t1") == 1
        assert col.throughput("t1") == pytest.approx(0.25)

    def test_duplicate_predicate_rejected(self):
        col = StatisticsCollector([], [])
        col.add_predicate("p", lambda m: True)
        with pytest.raises(ValueError):
            col.add_predicate("p", lambda m: True)

    def test_summary_structure(self):
        col = StatisticsCollector(["A"], ["t"])
        col.initialize(None, {"A": 1})
        col.finalize(1.0)
        s = col.summary()
        assert set(s) == {"mean_tokens", "occupancy", "throughput", "predicates"}
        assert s["mean_tokens"]["A"] == pytest.approx(1.0)
