"""Unit tests for PetriNet construction, lookup, and derived structure."""

import numpy as np
import pytest

from repro.core import (
    Deterministic,
    DuplicateNameError,
    Exponential,
    InhibitorArc,
    InputArc,
    OutputArc,
    PetriNet,
    UnknownElementError,
    tokens_gt,
)
from repro.core.errors import ArcError


def simple_net():
    net = PetriNet("t")
    net.add_place("A", initial_tokens=1)
    net.add_place("B")
    net.add_transition("move", Deterministic(1.0), inputs=["A"], outputs=["B"])
    return net


class TestConstruction:
    def test_add_place_and_lookup(self):
        net = PetriNet()
        p = net.add_place("P", initial_tokens=3)
        assert net.place("P") is p
        assert net.has_place("P")
        assert p.initial_count == 3

    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("P")
        with pytest.raises(DuplicateNameError):
            net.add_place("P")

    def test_duplicate_transition_rejected(self):
        net = simple_net()
        with pytest.raises(DuplicateNameError):
            net.add_transition("move")

    def test_unknown_place_lookup(self):
        with pytest.raises(UnknownElementError):
            PetriNet().place("missing")

    def test_unknown_transition_lookup(self):
        with pytest.raises(UnknownElementError):
            PetriNet().transition("missing")

    def test_arc_to_unknown_place_rejected(self):
        net = PetriNet()
        net.add_place("A")
        with pytest.raises(UnknownElementError):
            net.add_transition("t", inputs=["A"], outputs=["nope"])


class TestArcSpecs:
    def test_string_spec(self):
        net = simple_net()
        t = net.transition("move")
        assert t.inputs[0].place == "A"
        assert t.inputs[0].multiplicity == 1

    def test_tuple_multiplicity(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=5)
        net.add_place("B")
        t = net.add_transition("t", inputs=[("A", 3)], outputs=[("B", 2)])
        assert t.inputs[0].multiplicity == 3
        assert t.outputs[0].multiplicity == 2

    def test_input_filter_spec(self):
        net = PetriNet()
        net.add_place("A")
        flt = lambda tok: tok.color == 1  # noqa: E731
        t = net.add_transition("t", inputs=[("A", 1, flt)], outputs=[])
        assert t.inputs[0].token_filter is flt

    def test_output_color_spec(self):
        net = PetriNet()
        net.add_place("B")
        t = net.add_transition("t", outputs=[("B", 1, 42)], guard=tokens_gt("B", 0))
        assert t.outputs[0].color == 42

    def test_output_producer_spec(self):
        net = PetriNet()
        net.add_place("B")
        prod = lambda ctx: 7  # noqa: E731
        t = net.add_transition("t", outputs=[("B", 1, prod)], guard=tokens_gt("B", 0))
        assert t.outputs[0].producer is prod

    def test_arc_objects_pass_through(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("C")
        t = net.add_transition(
            "t",
            inputs=[InputArc("A", 1)],
            outputs=[OutputArc("B")],
            inhibitors=[InhibitorArc("C", 2)],
        )
        assert t.inhibitors[0].multiplicity == 2

    def test_bad_spec_rejected(self):
        net = PetriNet()
        net.add_place("A")
        with pytest.raises(ArcError):
            net.add_transition("t", inputs=[123])


class TestDerivedStructure:
    def test_preset_postset(self):
        net = simple_net()
        assert [t.name for t in net.postset("A")] == ["move"]
        assert [t.name for t in net.preset("B")] == ["move"]
        assert net.preset("A") == ()

    def test_dependents_include_guard_places(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("G")
        net.add_transition(
            "t", Deterministic(1), inputs=["A"], outputs=["B"],
            guard=tokens_gt("G", 0),
        )
        deps = net.dependents_of_place("G")
        assert [t.name for t in deps] == ["t"]

    def test_incidence_matrix(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=2)
        net.add_place("B")
        net.add_transition("t", Deterministic(1), inputs=[("A", 2)], outputs=[("B", 3)])
        pnames, tnames, C = net.incidence_matrix()
        i_a, i_b = pnames.index("A"), pnames.index("B")
        assert C[i_a, 0] == -2
        assert C[i_b, 0] == 3

    def test_incidence_self_loop_cancels(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Exponential(1), inputs=["A"], outputs=["A", "B"])
        _, _, C = net.incidence_matrix()
        assert C[0, 0] == 0  # A: -1 + 1
        assert C[1, 0] == 1

    def test_initial_marking_and_overrides(self):
        net = simple_net()
        m = net.initial_marking()
        assert m.count("A") == 1
        assert m.count("B") == 0
        m2 = net.initial_marking({"B": 4})
        assert m2.count("B") == 4

    def test_describe_contains_elements(self):
        text = simple_net().describe()
        assert "A" in text and "move" in text

    def test_validate_flags_isolated_place(self):
        net = simple_net()
        net.add_place("lonely")
        warnings = net.validate()
        assert any("lonely" in w for w in warnings)
