"""Unit tests for net validation lints."""

import pytest

from repro.core import Deterministic, PetriNet, tokens_gt
from repro.core.validation import validate_net


class TestValidation:
    def test_clean_net(self):
        net = PetriNet("ok")
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["A"], outputs=["B"])
        report = validate_net(net)
        assert report.ok
        assert not report.issues
        report.raise_on_error()  # no-op

    def test_empty_net_errors(self):
        report = validate_net(PetriNet("empty"))
        assert not report.ok
        codes = {i.code for i in report.errors}
        assert "no-places" in codes
        assert "no-transitions" in codes

    def test_isolated_place_warning(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("island")
        net.add_transition("t", Deterministic(1.0), inputs=["A"])
        report = validate_net(net)
        assert report.ok  # warning, not error
        assert any(i.code == "isolated-place" for i in report.warnings)

    def test_guard_connection_counts_as_connected(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("G")
        net.add_transition(
            "t", Deterministic(1.0), inputs=["A"], guard=tokens_gt("G", 0)
        )
        report = validate_net(net)
        assert not any(i.code == "isolated-place" for i in report.issues)

    def test_immediate_source_error(self):
        net = PetriNet()
        net.add_place("B")
        net.add_transition("boom", outputs=["B"])  # immediate, no inputs/guard
        report = validate_net(net)
        assert any(i.code == "immediate-source" for i in report.errors)
        with pytest.raises(ValueError):
            report.raise_on_error()

    def test_priority_on_timed_warning(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_transition("t", Deterministic(1.0), inputs=["A"], priority=5)
        report = validate_net(net)
        assert any(i.code == "priority-on-timed" for i in report.warnings)

    def test_dead_input_error(self):
        net = PetriNet()
        net.add_place("never")  # no tokens, no producer
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["never"], outputs=["B"])
        report = validate_net(net)
        assert any(i.code == "dead-input" for i in report.errors)

    def test_producible_place_not_dead(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("mid")
        net.add_place("B")
        net.add_transition("t1", Deterministic(1.0), inputs=["A"], outputs=["mid"])
        net.add_transition("t2", Deterministic(1.0), inputs=["mid"], outputs=["B"])
        report = validate_net(net)
        assert report.ok

    def test_report_str(self):
        net = PetriNet("named")
        net.add_place("A", initial_tokens=1)
        net.add_transition("t", Deterministic(1.0), inputs=["A"])
        assert "clean" in str(validate_net(net))
