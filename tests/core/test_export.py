"""Unit tests for net export (dict/JSON/DOT)."""

import json

import pytest

from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    net_to_dict,
    net_to_dot,
    net_to_json,
    tokens_eq,
)
from repro.models import build_cpu_petri_net


def sample_net():
    net = PetriNet("sample")
    net.add_place("A", initial_tokens=2, capacity=5)
    net.add_place("B")
    net.add_place("Inh", initial_tokens=1)
    net.add_transition(
        "move",
        Deterministic(1.5),
        inputs=[("A", 2)],
        outputs=[("B", 1, 7)],
        inhibitors=["Inh"],
        guard=tokens_eq("B", 0),
        priority=2,
        weight=3.0,
    )
    net.add_transition("gen", Exponential(0.5), inputs=["Inh"], outputs=["Inh", "A"])
    return net


class TestNetToDict:
    def test_structure(self):
        d = net_to_dict(sample_net())
        assert d["name"] == "sample"
        assert {p["name"] for p in d["places"]} == {"A", "B", "Inh"}
        move = next(t for t in d["transitions"] if t["name"] == "move")
        assert move["distribution"] == {"kind": "deterministic", "delay": 1.5}
        assert move["guard"] == "(#B == 0)"
        assert move["inputs"][0]["multiplicity"] == 2
        assert move["outputs"][0]["color"] == "7"
        assert move["inhibitors"][0]["place"] == "Inh"
        assert move["priority"] == 2
        assert move["weight"] == 3.0

    def test_exponential_records_rate(self):
        d = net_to_dict(sample_net())
        gen = next(t for t in d["transitions"] if t["name"] == "gen")
        assert gen["distribution"] == {"kind": "exponential", "rate": 0.5}

    def test_capacity_and_initial(self):
        d = net_to_dict(sample_net())
        a = next(p for p in d["places"] if p["name"] == "A")
        assert a["initial_tokens"] == 2
        assert a["capacity"] == 5

    def test_trivial_guard_is_none(self):
        d = net_to_dict(sample_net())
        gen = next(t for t in d["transitions"] if t["name"] == "gen")
        assert gen["guard"] is None


class TestNetToJson:
    def test_round_trip_parses(self):
        text = net_to_json(sample_net())
        parsed = json.loads(text)
        assert parsed["name"] == "sample"

    def test_paper_model_serialises(self):
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        parsed = json.loads(net_to_json(net))
        names = {t["name"] for t in parsed["transitions"]}
        assert "Power_Down_Threshold" in names


class TestNetToDot:
    def test_contains_all_elements(self):
        dot = net_to_dot(sample_net())
        assert dot.startswith('digraph "sample"')
        for name in ("A", "B", "Inh", "T:move", "T:gen"):
            assert f'"{name}"' in dot

    def test_inhibitor_styled(self):
        dot = net_to_dot(sample_net())
        assert "arrowhead=odot" in dot
        assert "style=dashed" in dot

    def test_timing_annotations(self):
        dot = net_to_dot(sample_net())
        assert "d=1.5" in dot
        assert "λ=0.5" in dot

    def test_invalid_rankdir(self):
        with pytest.raises(ValueError):
            net_to_dot(sample_net(), rankdir="XX")

    def test_multiplicity_labels(self):
        dot = net_to_dot(sample_net())
        assert 'label="2"' in dot
