"""Tests for capacity-aware enabling (bounded places block producers)."""

import pytest

from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    simulate,
)
from repro.markov import BirthDeathChain


class TestCapacityEnabling:
    def test_producer_blocks_at_capacity(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q", capacity=2)
        net.add_transition(
            "fill", Deterministic(1.0), inputs=["src"], outputs=["src", "q"]
        )
        result = simulate(net, horizon=10.0)
        # fills at t=1, 2; then blocks forever (no consumer)
        assert result.final_marking_counts["q"] == 2
        assert result.stats.firing_count("fill") == 2

    def test_unblocks_when_space_frees(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q", capacity=1)
        net.add_place("done")
        net.add_transition(
            "fill", Deterministic(1.0), inputs=["src"], outputs=["src", "q"]
        )
        net.add_transition(
            "drain", Deterministic(3.0), inputs=["q"], outputs=["done"]
        )
        result = simulate(net, horizon=20.0)
        # cycle: fill (1s) then drain (3s) -> period 4s, 5 drains by t=20
        assert result.final_marking_counts["done"] == 5

    def test_self_loop_headroom(self):
        # A transition consuming and producing on the same bounded
        # place must not deadlock at capacity.
        net = PetriNet()
        net.add_place("ring", initial_tokens=2, capacity=2)
        net.add_place("count")
        net.add_transition(
            "spin", Deterministic(1.0), inputs=["ring"],
            outputs=["ring", "count"],
        )
        result = simulate(net, horizon=5.0)
        assert result.stats.firing_count("spin") == 5

    def test_multiplicity_respected(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q", capacity=3)
        net.add_transition(
            "fill2", Deterministic(1.0), inputs=["src"], outputs=["src", ("q", 2)]
        )
        result = simulate(net, horizon=10.0)
        # one firing deposits 2 (q=2); second would need headroom 2 but
        # only 1 remains -> blocked.
        assert result.final_marking_counts["q"] == 2

    def test_reset_place_exempt(self):
        net = PetriNet()
        net.add_place("go", initial_tokens=1)
        net.add_place("q", initial_tokens=2, capacity=2)
        net.add_transition(
            "flush_and_refill", Deterministic(1.0), inputs=["go"],
            outputs=["q"], resets=["q"],
        )
        result = simulate(net, horizon=1.5)
        # reset empties q, then the single deposit lands: no deadlock
        assert result.final_marking_counts["q"] == 1

    def test_mm1k_loss_queue_matches_birth_death(self):
        """Capacity enabling turns the open M/M/1 into M/M/1/K."""
        lam, mu, K = 1.0, 1.5, 4
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q", capacity=K)
        net.add_transition(
            "arrive", Exponential(lam), inputs=["src"], outputs=["src", "q"]
        )
        net.add_transition("serve", Exponential(mu), inputs=["q"])
        result = simulate(net, horizon=60_000.0, seed=9, warmup=1000.0)
        expected = BirthDeathChain.mm1k(lam, mu, K).mean_population()
        assert result.mean_tokens("q") == pytest.approx(expected, rel=0.05)

    def test_blocked_arrival_timer_behaviour(self):
        """While blocked, the (enabling-memory) arrival clock pauses and
        restarts on unblock — blocked arrivals are lost, not queued."""
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q", capacity=1)
        net.add_place("served")
        net.add_transition(
            "arrive", Exponential(5.0), inputs=["src"], outputs=["src", "q"]
        )
        net.add_transition("serve", Exponential(1.0), inputs=["q"], outputs=["served"])
        result = simulate(net, horizon=5000.0, seed=4, warmup=100.0)
        # Erlang-B style loss system with resampled arrivals: the
        # served throughput is strictly below the offered rate.
        assert result.throughput("serve") < 5.0
        assert result.throughput("serve") > 0.5
