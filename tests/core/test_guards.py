"""Unit tests for the guard algebra."""

import pytest

from repro.core.guards import (
    FALSE,
    TRUE,
    FunctionGuard,
    color_eq,
    color_in,
    color_pred,
    tokens_between,
    tokens_eq,
    tokens_ge,
    tokens_gt,
    tokens_le,
    tokens_lt,
    tokens_ne,
)
from repro.core.errors import GuardError
from repro.core.tokens import Token


class FakeMarking:
    """Minimal marking protocol for guard evaluation."""

    def __init__(self, counts):
        self._counts = counts

    def count(self, place):
        return self._counts.get(place, 0)


class TestConstants:
    def test_true_false(self):
        m = FakeMarking({})
        assert TRUE(m) is True
        assert FALSE(m) is False

    def test_str(self):
        assert str(TRUE) == "true"
        assert str(FALSE) == "false"


class TestTokenCountGuards:
    @pytest.mark.parametrize(
        "factory,count,expected",
        [
            (lambda: tokens_eq("P", 2), 2, True),
            (lambda: tokens_eq("P", 2), 3, False),
            (lambda: tokens_ne("P", 2), 3, True),
            (lambda: tokens_gt("P", 0), 1, True),
            (lambda: tokens_gt("P", 0), 0, False),
            (lambda: tokens_ge("P", 2), 2, True),
            (lambda: tokens_lt("P", 2), 1, True),
            (lambda: tokens_le("P", 2), 2, True),
            (lambda: tokens_le("P", 2), 3, False),
        ],
    )
    def test_comparisons(self, factory, count, expected):
        guard = factory()
        assert guard(FakeMarking({"P": count})) is expected

    def test_renders_paper_syntax(self):
        assert str(tokens_eq("Buffer", 0)) == "(#Buffer == 0)"
        assert str(tokens_gt("Idle", 0)) == "(#Idle > 0)"

    def test_places_tracked(self):
        assert tokens_eq("Buffer", 0).places() == frozenset({"Buffer"})

    def test_between(self):
        g = tokens_between("P", 1, 3)
        assert g(FakeMarking({"P": 2}))
        assert not g(FakeMarking({"P": 0}))
        assert not g(FakeMarking({"P": 4}))

    def test_between_invalid(self):
        with pytest.raises(ValueError):
            tokens_between("P", 3, 1)


class TestComposition:
    def test_and(self):
        g = tokens_eq("A", 0) & tokens_gt("B", 0)
        assert g(FakeMarking({"A": 0, "B": 1}))
        assert not g(FakeMarking({"A": 1, "B": 1}))
        assert not g(FakeMarking({"A": 0, "B": 0}))

    def test_or(self):
        g = tokens_gt("A", 0) | tokens_gt("B", 0)
        assert g(FakeMarking({"A": 1}))
        assert g(FakeMarking({"B": 1}))
        assert not g(FakeMarking({}))

    def test_not(self):
        g = ~tokens_gt("A", 0)
        assert g(FakeMarking({}))
        assert not g(FakeMarking({"A": 1}))

    def test_table_xi_style_rendering(self):
        g = tokens_eq("Buffer", 0) & tokens_gt("Idle", 0)
        assert str(g) == "((#Buffer == 0) && (#Idle > 0))"

    def test_composite_places_union(self):
        g = tokens_eq("A", 0) & (tokens_gt("B", 0) | ~tokens_lt("C", 5))
        assert g.places() == frozenset({"A", "B", "C"})

    def test_de_morgan_equivalence(self):
        lhs = ~(tokens_gt("A", 0) & tokens_gt("B", 0))
        rhs = ~tokens_gt("A", 0) | ~tokens_gt("B", 0)
        for a in range(3):
            for b in range(3):
                m = FakeMarking({"A": a, "B": b})
                assert lhs(m) == rhs(m)


class TestFunctionGuard:
    def test_wraps_callable(self):
        g = FunctionGuard(lambda m: m.count("P") % 2 == 0, "even-P")
        assert g(FakeMarking({"P": 2}))
        assert not g(FakeMarking({"P": 3}))
        assert str(g) == "even-P"

    def test_raising_callable_wrapped(self):
        def bad(m):
            raise RuntimeError("boom")

        g = FunctionGuard(bad, "bad")
        with pytest.raises(GuardError):
            g(FakeMarking({}))


class TestLocalGuards:
    def test_color_eq(self):
        f = color_eq(2)
        assert f(Token(2))
        assert not f(Token(3))
        assert not f(Token(None))

    def test_color_in(self):
        f = color_in({1, 3})
        assert f(Token(1))
        assert f(Token(3))
        assert not f(Token(2))

    def test_color_pred(self):
        f = color_pred(lambda c: isinstance(c, int) and c > 1)
        assert f(Token(5))
        assert not f(Token(0))
