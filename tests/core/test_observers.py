"""Unit tests for observers: traces, dwell recorders, flow counters."""

import pytest

from repro.core import (
    Deterministic,
    FiringTrace,
    PetriNet,
    Simulation,
    StateDwellRecorder,
    TokenFlowCounter,
)


def ping_pong_net():
    net = PetriNet("pp")
    net.add_place("A", initial_tokens=1)
    net.add_place("B")
    net.add_transition("ab", Deterministic(1.0), inputs=["A"], outputs=["B"])
    net.add_transition("ba", Deterministic(2.0), inputs=["B"], outputs=["A"])
    return net


class TestFiringTrace:
    def test_records_all_firings(self):
        net = ping_pong_net()
        sim = Simulation(net)
        trace = FiringTrace()
        sim.add_observer(trace)
        sim.run(10.0)
        # ab at 1, ba at 3, ab at 4, ba at 6, ab at 7, ba at 9, ab at 10
        assert trace.count("ab") == 4
        assert trace.count("ba") == 3
        assert trace.times("ab") == pytest.approx([1.0, 4.0, 7.0, 10.0])

    def test_interfiring_times(self):
        net = ping_pong_net()
        sim = Simulation(net)
        trace = FiringTrace()
        sim.add_observer(trace)
        sim.run(10.0)
        assert trace.interfiring_times("ab") == pytest.approx([3.0, 3.0, 3.0])

    def test_transition_filter(self):
        net = ping_pong_net()
        sim = Simulation(net)
        trace = FiringTrace(transitions=["ba"])
        sim.add_observer(trace)
        sim.run(10.0)
        assert trace.count("ab") == 0
        assert trace.count("ba") == 3

    def test_bounded_records(self):
        net = ping_pong_net()
        sim = Simulation(net)
        trace = FiringTrace(max_records=2)
        sim.add_observer(trace)
        sim.run(10.0)
        assert len(trace.records) == 2
        # newest kept
        assert trace.records[-1].time == pytest.approx(10.0)

    def test_record_fields(self):
        net = ping_pong_net()
        sim = Simulation(net)
        trace = FiringTrace()
        sim.add_observer(trace)
        sim.run(1.5)
        rec = trace.records[0]
        assert rec.transition == "ab"
        assert rec.consumed == {"A": 1}
        assert rec.produced == 1


class TestStateDwellRecorder:
    def test_classifies_marking(self):
        net = ping_pong_net()
        sim = Simulation(net)
        rec = StateDwellRecorder(
            lambda v: "a-side" if v.count("A") else "b-side"
        )
        rec.attach(sim)
        result = sim.run(9.0)
        rec.finalize(result.end_time)
        # A marked [0,1),[3,4),[6,7) = 3s; B [1,3),[4,6),[7,9) = 6s
        assert rec.dwell["a-side"] == pytest.approx(3.0)
        assert rec.dwell["b-side"] == pytest.approx(6.0)
        assert rec.fractions()["b-side"] == pytest.approx(2 / 3)

    def test_visit_counts(self):
        net = ping_pong_net()
        sim = Simulation(net)
        rec = StateDwellRecorder(
            lambda v: "a-side" if v.count("A") else "b-side"
        )
        rec.attach(sim)
        sim.run(9.0)
        rec.finalize(9.0)
        # ab fires at 1, 4, 7 and ba at 3, 6, 9 (events due exactly at
        # the horizon execute), so A is re-entered at t=9.
        assert rec.visits["a-side"] == 4
        assert rec.visits["b-side"] == 3

    def test_warmup(self):
        net = ping_pong_net()
        sim = Simulation(net)
        rec = StateDwellRecorder(
            lambda v: "a-side" if v.count("A") else "b-side", warmup=3.0
        )
        rec.attach(sim)
        sim.run(9.0)
        rec.finalize(9.0)
        assert rec.total_time() == pytest.approx(6.0)


class TestTokenFlowCounter:
    def test_counts_consumption(self):
        net = ping_pong_net()
        sim = Simulation(net)
        counter = TokenFlowCounter(["A", "B"])
        sim.add_observer(counter)
        sim.run(10.0)
        assert counter.counts["A"] == 4
        assert counter.counts["B"] == 3
