"""Unit tests for the event calendar and transition clocks."""

import pytest

from repro.core.events import EventCalendar


class TestScheduling:
    def test_schedule_and_pop(self):
        cal = EventCalendar()
        cal.schedule("a", 2.0)
        cal.schedule("b", 1.0)
        first = cal.pop_next()
        assert first.transition == "b"
        assert first.time == 1.0
        second = cal.pop_next()
        assert second.transition == "a"
        assert cal.pop_next() is None

    def test_ties_break_by_insertion_order(self):
        # Without a rank_of hook every key ranks (0, 0) and equal-time
        # events keep the historical insertion-order behaviour.
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 1.0)
        assert cal.pop_next().transition == "a"
        assert cal.pop_next().transition == "b"

    def test_reschedule_supersedes(self):
        cal = EventCalendar()
        cal.schedule("a", 5.0)
        cal.schedule("a", 1.0)  # replaces
        assert cal.pop_next().time == 1.0
        assert cal.pop_next() is None

    def test_cancel(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.cancel("a")
        assert cal.pop_next() is None
        assert not cal.is_scheduled("a")

    def test_cancel_unscheduled_is_noop(self):
        cal = EventCalendar()
        cal.cancel("ghost")
        assert cal.pop_next() is None

    def test_is_scheduled_and_time(self):
        cal = EventCalendar()
        assert not cal.is_scheduled("a")
        cal.schedule("a", 3.0)
        assert cal.is_scheduled("a")
        assert cal.scheduled_time("a") == 3.0

    def test_pop_clears_schedule(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.pop_next()
        assert not cal.is_scheduled("a")


class TestTiePolicy:
    """Deterministic equal-time ordering via the ``rank_of`` hook."""

    RANKS = {"x#0": (2, 0), "y#0": (0, 0), "y#1": (0, 1), "z#0": (1, 0)}

    def test_equal_times_pop_in_rank_order(self):
        cal = EventCalendar(rank_of=self.RANKS.__getitem__)
        # Scheduled in an order deliberately unlike the rank order.
        for key in ("x#0", "z#0", "y#1", "y#0"):
            cal.schedule(key, 4.0)
        popped = [cal.pop_next().transition for _ in range(4)]
        assert popped == ["y#0", "y#1", "z#0", "x#0"]

    def test_rank_beats_insertion_but_time_beats_rank(self):
        cal = EventCalendar(rank_of=self.RANKS.__getitem__)
        cal.schedule("y#0", 5.0)  # best rank, later time
        cal.schedule("x#0", 3.0)  # worst rank, earliest time
        assert cal.pop_next().transition == "x#0"
        assert cal.pop_next().transition == "y#0"

    def test_equal_ranks_fall_back_to_insertion_order(self):
        cal = EventCalendar(rank_of=lambda key: (0, 0))
        cal.schedule("b#0", 1.0)
        cal.schedule("a#0", 1.0)
        assert cal.pop_next().transition == "b#0"
        assert cal.pop_next().transition == "a#0"

    def test_reschedule_reranks_at_schedule_time(self):
        # rank_of is evaluated per schedule() call; a superseding
        # reschedule carries the fresh rank, not the stale entry's.
        ranks = {"a": (5, 0), "b": (1, 0)}
        cal = EventCalendar(rank_of=lambda key: ranks[key])
        cal.schedule("a", 1.0)
        cal.schedule("b", 1.0)
        ranks["a"] = (0, 0)
        cal.schedule("a", 1.0)  # supersedes with the better rank
        assert cal.pop_next().transition == "a"
        assert cal.pop_next().transition == "b"


class TestPeek:
    def test_peek_skips_stale(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 2.0)
        cal.cancel("a")
        assert cal.peek_time() == 2.0

    def test_peek_empty(self):
        assert EventCalendar().peek_time() is None

    def test_peek_does_not_pop(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        assert cal.peek_time() == 1.0
        assert cal.pop_next().transition == "a"


class TestClocks:
    def test_age_memory_remaining_storage(self):
        cal = EventCalendar()
        clk = cal.clock("t")
        clk.remaining = 0.7
        assert cal.clock("t").remaining == 0.7

    def test_live_count(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 2.0)
        cal.cancel("a")
        assert cal.live_count() == 1

    def test_clear(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.clear()
        assert cal.pop_next() is None
        assert len(cal) == 0

    def test_many_reschedules_stay_consistent(self):
        cal = EventCalendar()
        for i in range(100):
            cal.schedule("t", float(100 - i))
        entry = cal.pop_next()
        assert entry.time == 1.0
        assert cal.pop_next() is None
