"""Unit tests for the event calendar and transition clocks."""

import pytest

from repro.core.events import EventCalendar


class TestScheduling:
    def test_schedule_and_pop(self):
        cal = EventCalendar()
        cal.schedule("a", 2.0)
        cal.schedule("b", 1.0)
        first = cal.pop_next()
        assert first.transition == "b"
        assert first.time == 1.0
        second = cal.pop_next()
        assert second.transition == "a"
        assert cal.pop_next() is None

    def test_ties_break_by_insertion_order(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 1.0)
        assert cal.pop_next().transition == "a"
        assert cal.pop_next().transition == "b"

    def test_reschedule_supersedes(self):
        cal = EventCalendar()
        cal.schedule("a", 5.0)
        cal.schedule("a", 1.0)  # replaces
        assert cal.pop_next().time == 1.0
        assert cal.pop_next() is None

    def test_cancel(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.cancel("a")
        assert cal.pop_next() is None
        assert not cal.is_scheduled("a")

    def test_cancel_unscheduled_is_noop(self):
        cal = EventCalendar()
        cal.cancel("ghost")
        assert cal.pop_next() is None

    def test_is_scheduled_and_time(self):
        cal = EventCalendar()
        assert not cal.is_scheduled("a")
        cal.schedule("a", 3.0)
        assert cal.is_scheduled("a")
        assert cal.scheduled_time("a") == 3.0

    def test_pop_clears_schedule(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.pop_next()
        assert not cal.is_scheduled("a")


class TestPeek:
    def test_peek_skips_stale(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 2.0)
        cal.cancel("a")
        assert cal.peek_time() == 2.0

    def test_peek_empty(self):
        assert EventCalendar().peek_time() is None

    def test_peek_does_not_pop(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        assert cal.peek_time() == 1.0
        assert cal.pop_next().transition == "a"


class TestClocks:
    def test_age_memory_remaining_storage(self):
        cal = EventCalendar()
        clk = cal.clock("t")
        clk.remaining = 0.7
        assert cal.clock("t").remaining == 0.7

    def test_live_count(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.schedule("b", 2.0)
        cal.cancel("a")
        assert cal.live_count() == 1

    def test_clear(self):
        cal = EventCalendar()
        cal.schedule("a", 1.0)
        cal.clear()
        assert cal.pop_next() is None
        assert len(cal) == 0

    def test_many_reschedules_stay_consistent(self):
        cal = EventCalendar()
        for i in range(100):
            cal.schedule("t", float(100 - i))
        entry = cal.pop_next()
        assert entry.time == 1.0
        assert cal.pop_next() is None
