"""Unit + statistical tests for firing-time distributions."""

import numpy as np
import pytest

from repro.core.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    Immediate,
    LogNormal,
    Triangular,
    Uniform,
    Weibull,
)

RNG = np.random.default_rng(123)


def sample_mean_var(dist, n=60_000):
    rng = np.random.default_rng(99)
    xs = np.array([dist.sample(rng) for _ in range(n)])
    return xs.mean(), xs.var()


class TestImmediate:
    def test_zero_everything(self):
        d = Immediate()
        assert d.sample(RNG) == 0.0
        assert d.mean() == 0.0
        assert d.variance() == 0.0
        assert d.is_immediate
        assert not d.is_deterministic


class TestDeterministic:
    def test_constant_sample(self):
        d = Deterministic(2.5)
        assert d.sample(RNG) == 2.5
        assert d.mean() == 2.5
        assert d.variance() == 0.0
        assert d.is_deterministic

    def test_zero_delay_allowed(self):
        assert Deterministic(0.0).sample(RNG) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-0.1)


class TestExponential:
    def test_moments(self):
        d = Exponential(4.0)
        assert d.mean() == pytest.approx(0.25)
        assert d.variance() == pytest.approx(0.0625)
        assert d.is_exponential

    def test_from_mean(self):
        d = Exponential.from_mean(0.5)
        assert d.rate == pytest.approx(2.0)

    def test_sampling_matches_moments(self):
        d = Exponential(2.0)
        m, v = sample_mean_var(d)
        assert m == pytest.approx(0.5, rel=0.03)
        assert v == pytest.approx(0.25, rel=0.08)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential.from_mean(-1.0)


class TestUniform:
    def test_moments(self):
        d = Uniform(1.0, 3.0)
        assert d.mean() == pytest.approx(2.0)
        assert d.variance() == pytest.approx(4.0 / 12.0)

    def test_samples_in_range(self):
        d = Uniform(1.0, 3.0)
        xs = [d.sample(RNG) for _ in range(200)]
        assert all(1.0 <= x <= 3.0 for x in xs)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 1.0)


class TestErlang:
    def test_moments(self):
        d = Erlang(4, 2.0)
        assert d.mean() == pytest.approx(2.0)
        assert d.variance() == pytest.approx(1.0)

    def test_from_mean(self):
        d = Erlang.from_mean(10, 0.5)
        assert d.mean() == pytest.approx(0.5)

    def test_large_k_approaches_constant(self):
        d = Erlang.from_mean(400, 1.0)
        m, v = sample_mean_var(d, n=20_000)
        assert m == pytest.approx(1.0, rel=0.01)
        assert v < 0.01  # cv^2 = 1/400

    def test_invalid(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)
        with pytest.raises(ValueError):
            Erlang(2, -1.0)


class TestWeibull:
    def test_shape1_is_exponential(self):
        d = Weibull(1.0, 2.0)
        assert d.mean() == pytest.approx(2.0)
        assert d.variance() == pytest.approx(4.0)

    def test_sampling(self):
        d = Weibull(2.0, 1.0)
        m, _ = sample_mean_var(d, n=30_000)
        assert m == pytest.approx(d.mean(), rel=0.03)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Weibull(0, 1)


class TestTriangular:
    def test_moments(self):
        d = Triangular(0.0, 1.0, 2.0)
        assert d.mean() == pytest.approx(1.0)
        assert d.variance() == pytest.approx((0 + 4 + 1 - 0 - 0 - 2) / 18.0)

    def test_degenerate(self):
        d = Triangular(1.0, 1.0, 1.0)
        assert d.sample(RNG) == 1.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Triangular(2.0, 1.0, 3.0)


class TestLogNormal:
    def test_from_mean_cv(self):
        d = LogNormal.from_mean_cv(2.0, 0.5)
        assert d.mean() == pytest.approx(2.0)
        cv = np.sqrt(d.variance()) / d.mean()
        assert cv == pytest.approx(0.5)

    def test_sampling(self):
        d = LogNormal.from_mean_cv(1.0, 0.3)
        m, _ = sample_mean_var(d, n=40_000)
        assert m == pytest.approx(1.0, rel=0.03)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, -1.0)


class TestHyperexponential:
    def test_moments(self):
        d = Hyperexponential([0.5, 0.5], [1.0, 2.0])
        assert d.mean() == pytest.approx(0.5 / 1.0 + 0.5 / 2.0)
        # second moment: sum 2 p / r^2
        second = 2 * 0.5 / 1.0 + 2 * 0.5 / 4.0
        assert d.variance() == pytest.approx(second - d.mean() ** 2)

    def test_cv_at_least_one(self):
        d = Hyperexponential([0.9, 0.1], [10.0, 0.1])
        cv2 = d.variance() / d.mean() ** 2
        assert cv2 >= 1.0

    def test_sampling(self):
        d = Hyperexponential([0.3, 0.7], [1.0, 5.0])
        m, _ = sample_mean_var(d, n=60_000)
        assert m == pytest.approx(d.mean(), rel=0.05)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.4], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Hyperexponential([1.0], [1.0, 2.0])


class TestEmpirical:
    def test_resamples_only_observed_values(self):
        d = Empirical([1.0, 2.0, 3.0])
        xs = {d.sample(RNG) for _ in range(100)}
        assert xs <= {1.0, 2.0, 3.0}

    def test_moments(self):
        d = Empirical([1.0, 2.0, 3.0])
        assert d.mean() == pytest.approx(2.0)
        assert d.variance() == pytest.approx(2.0 / 3.0)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])
