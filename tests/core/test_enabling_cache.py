"""The enabled-candidate cache: dependency tracking must never starve.

The engine recomputes a transition's enabling degree only when a firing
touches one of its dependency places.  These tests pin the dependency
introspection (guards and transitions) and the conservative fallback
for opaque guards, plus end-to-end equivalence with the uncached
semantics.
"""

import pytest

from repro.core import Deterministic, PetriNet, Simulation, simulate
from repro.core.guards import (
    FALSE,
    TRUE,
    FunctionGuard,
    tokens_eq,
    tokens_gt,
)
from repro.core.transitions import Transition


class TestGuardDependencies:
    def test_constant_guards_have_no_dependencies(self):
        assert TRUE.dependencies() == frozenset()
        assert FALSE.dependencies() == frozenset()

    def test_token_count_guard_names_its_place(self):
        assert tokens_eq("Buffer", 0).dependencies() == {"Buffer"}

    def test_compositions_union_dependencies(self):
        guard = tokens_eq("Buffer", 0) & tokens_gt("Idle", 0)
        assert guard.dependencies() == {"Buffer", "Idle"}
        assert (~guard).dependencies() == {"Buffer", "Idle"}
        either = tokens_eq("A", 1) | tokens_eq("B", 1)
        assert either.dependencies() == {"A", "B"}

    def test_function_guard_is_opaque(self):
        fn = FunctionGuard(lambda m: True, depends_on=frozenset({"A"}))
        assert fn.dependencies() is None
        # Opacity is contagious through compositions.
        assert (fn & tokens_eq("B", 0)).dependencies() is None
        assert (~fn).dependencies() is None


class TestTransitionDependencies:
    def test_includes_inputs_inhibitors_outputs_and_guard(self):
        net = PetriNet()
        for p in ("A", "B", "G", "H"):
            net.add_place(p)
        t = net.add_transition(
            "t",
            Deterministic(1.0),
            inputs=["A"],
            outputs=["B"],
            inhibitors=["H"],
            guard=tokens_eq("G", 0),
        )
        assert t.enabling_dependencies() == {"A", "B", "G", "H"}

    def test_opaque_guard_makes_dependencies_unknown(self):
        t = Transition(
            "t", Deterministic(1.0), guard=FunctionGuard(lambda m: True)
        )
        assert t.enabling_dependencies() is None


class TestConservativeInvalidation:
    def test_undeclared_function_guard_read_is_not_starved(self):
        # T's guard reads "Gate" but declares nothing; the gate fills
        # via an unrelated transition.  The cache must still notice.
        net = PetriNet("gated")
        net.add_place("Gate")
        net.add_place("Src", initial_tokens=1)
        net.add_place("Out")
        net.add_transition(
            "fill", Deterministic(1.0), inputs=["Src"], outputs=["Gate"]
        )
        net.add_transition(
            "gated",
            Deterministic(1.0),
            outputs=["Out"],
            # Deliberately no depends_on declaration.
            guard=FunctionGuard(lambda m: m.count("Gate") > 0, "gate open"),
        )
        result = simulate(net, horizon=2.5, seed=0)
        assert result.final_marking_counts["Out"] >= 1

    def test_cached_and_uncached_degrees_agree_during_run(self):
        net = PetriNet("agree")
        net.add_place("A", initial_tokens=3)
        net.add_place("B")
        net.add_place("C")
        net.add_transition(
            "ab", Deterministic(0.5), inputs=["A"], outputs=["B"]
        )
        net.add_transition(
            "bc",
            Deterministic(0.7),
            inputs=["B"],
            outputs=["C"],
            guard=tokens_eq("A", 0),
        )
        sim = Simulation(net, seed=1)
        for _ in range(20):
            for t in net.transitions:
                assert sim._cached_degree(t) == sim.enabling_degree(t)
            if not sim.step():
                break
        assert sim.marking.count("C") == 3


class TestEquivalenceWithUncachedSemantics:
    def test_wsn_node_energy_unchanged(self):
        # Golden value computed with the pre-cache engine (rescan-all):
        # the cache must be observationally invisible.
        from repro.models.wsn_node import NodeParameters, WSNNodeModel

        model = WSNNodeModel(
            NodeParameters(power_down_threshold=0.00178), "closed"
        )
        result = model.simulate(20.0, seed=7)
        brute = model.simulate(20.0, seed=7)
        assert result.total_energy_j == brute.total_energy_j
        assert result.total_energy_j == pytest.approx(1.541, abs=0.5)
