"""Unit tests for tokens and token multisets."""

import pytest

from repro.core.tokens import BLACK, Token, TokenBag, make_tokens


class TestToken:
    def test_default_is_colorless(self):
        tok = Token()
        assert tok.color is None
        assert tok.created_at == 0.0

    def test_color_payload(self):
        tok = Token(color=3, created_at=1.5)
        assert tok.color == 3
        assert tok.created_at == 1.5

    def test_with_color_copies(self):
        tok = Token(color=1, created_at=2.0)
        other = tok.with_color(7)
        assert other.color == 7
        assert other.created_at == 2.0
        assert tok.color == 1

    def test_age(self):
        tok = Token(created_at=3.0)
        assert tok.age(10.0) == pytest.approx(7.0)

    def test_black_prototype(self):
        assert BLACK.color is None


class TestMakeTokens:
    def test_count(self):
        toks = make_tokens(5, color="x", created_at=2.0)
        assert len(toks) == 5
        assert all(t.color == "x" for t in toks)
        assert all(t.created_at == 2.0 for t in toks)

    def test_distinct_instances(self):
        toks = make_tokens(3)
        assert len({id(t) for t in toks}) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_tokens(-1)


class TestTokenBag:
    def test_empty(self):
        bag = TokenBag()
        assert len(bag) == 0
        assert not bag
        assert bag.count() == 0

    def test_add_and_len(self):
        bag = TokenBag()
        bag.add(Token(1))
        bag.add(Token(2))
        assert len(bag) == 2
        assert bag.colors() == [1, 2]

    def test_extend_preserves_order(self):
        bag = TokenBag([Token("a")])
        bag.extend([Token("b"), Token("c")])
        assert bag.colors() == ["a", "b", "c"]

    def test_take_fifo(self):
        bag = TokenBag([Token(i) for i in range(5)])
        taken = bag.take(2)
        assert [t.color for t in taken] == [0, 1]
        assert bag.colors() == [2, 3, 4]

    def test_take_zero(self):
        bag = TokenBag([Token(1)])
        assert bag.take(0) == []
        assert len(bag) == 1

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            TokenBag().take(-1)

    def test_take_too_many_raises_and_rolls_back(self):
        bag = TokenBag([Token(1)])
        with pytest.raises(ValueError):
            bag.take(2)
        assert len(bag) == 1

    def test_take_with_filter_selects_oldest_matching(self):
        bag = TokenBag([Token(1), Token(2), Token(1), Token(2)])
        taken = bag.take(1, predicate=lambda t: t.color == 2)
        assert [t.color for t in taken] == [2]
        assert bag.colors() == [1, 1, 2]

    def test_take_with_filter_all_or_nothing(self):
        bag = TokenBag([Token(1), Token(2)])
        with pytest.raises(ValueError):
            bag.take(2, predicate=lambda t: t.color == 2)
        # Rollback: both tokens still present.
        assert sorted(bag.colors()) == [1, 2]

    def test_count_with_predicate(self):
        bag = TokenBag([Token(1), Token(2), Token(2)])
        assert bag.count(lambda t: t.color == 2) == 2

    def test_peek_does_not_remove(self):
        bag = TokenBag([Token(1), Token(2)])
        assert [t.color for t in bag.peek(1)] == [1]
        assert len(bag) == 2

    def test_color_multiset(self):
        bag = TokenBag([Token("a"), Token("b"), Token("a")])
        assert bag.color_multiset() == {"a": 2, "b": 1}

    def test_clear_returns_all(self):
        bag = TokenBag([Token(1), Token(2)])
        out = bag.clear()
        assert len(out) == 2
        assert len(bag) == 0

    def test_copy_is_independent(self):
        bag = TokenBag([Token(1)])
        clone = bag.copy()
        clone.add(Token(2))
        assert len(bag) == 1
        assert len(clone) == 2

    def test_iteration(self):
        bag = TokenBag([Token(i) for i in range(3)])
        assert [t.color for t in bag] == [0, 1, 2]
