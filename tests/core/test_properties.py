"""Property-based tests (hypothesis) on the core data structures.

These encode the invariants the engine's correctness rests on:
multiset algebra laws, token conservation under the token game,
time-weighted statistics consistency, calendar ordering, and
distribution sampler moments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    Simulation,
    simulate,
)
from repro.core.events import EventCalendar
from repro.core.statistics import TimeWeightedAccumulator
from repro.core.tokens import Token, TokenBag

colors = st.one_of(st.none(), st.integers(-5, 5), st.sampled_from("abc"))
token_lists = st.lists(
    st.builds(Token, colors, st.floats(0, 100, allow_nan=False)), max_size=30
)


class TestTokenBagProperties:
    @given(token_lists)
    def test_len_equals_count(self, tokens):
        bag = TokenBag(tokens)
        assert len(bag) == bag.count()

    @given(token_lists, st.integers(0, 30))
    def test_take_then_count(self, tokens, k):
        bag = TokenBag(tokens)
        n = len(bag)
        if k <= n:
            taken = bag.take(k)
            assert len(taken) == k
            assert len(bag) == n - k
        else:
            with pytest.raises(ValueError):
                bag.take(k)
            assert len(bag) == n  # rollback

    @given(token_lists)
    def test_take_all_preserves_multiset(self, tokens):
        bag = TokenBag(tokens)
        before = bag.color_multiset()
        taken = bag.take(len(tokens))
        after: dict = {}
        for t in taken:
            after[t.color] = after.get(t.color, 0) + 1
        assert before == after

    @given(token_lists, st.integers(-5, 5))
    def test_filtered_take_only_matching(self, tokens, target):
        bag = TokenBag(tokens)
        pred = lambda t: t.color == target  # noqa: E731
        matching = bag.count(pred)
        if matching:
            taken = bag.take(matching, pred)
            assert all(t.color == target for t in taken)
            assert bag.count(pred) == 0

    @given(token_lists)
    def test_fifo_order_preserved(self, tokens):
        bag = TokenBag(tokens)
        out = []
        while bag:
            out.extend(bag.take(1))
        assert [t.color for t in out] == [t.color for t in tokens]


class TestCalendarProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.floats(0, 100, allow_nan=False)),
            max_size=40,
        )
    )
    def test_pop_order_monotone(self, schedule):
        cal = EventCalendar()
        for name, t in schedule:
            cal.schedule(name, t)
        last = -1.0
        popped = set()
        while True:
            entry = cal.pop_next()
            if entry is None:
                break
            assert entry.time >= last
            last = entry.time
            assert entry.transition not in popped  # one live entry per key
            popped.add(entry.transition)

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20))
    def test_reschedule_keeps_only_last(self, times):
        cal = EventCalendar()
        for t in times:
            cal.schedule("x", t)
        entry = cal.pop_next()
        assert entry.time == times[-1]
        assert cal.pop_next() is None


class TestAccumulatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.01, 10, allow_nan=False),
                st.floats(0, 5, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_time_average_bounded_by_extremes(self, steps):
        acc = TimeWeightedAccumulator()
        t = 0.0
        values = [0.0]
        for dt, v in steps:
            t += dt
            acc.update(t, v)
            values.append(v)
        acc.finalize(t + 1.0)
        avg = acc.time_average()
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(0.01, 10, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_indicator_average_equals_nonzero_fraction(self, steps):
        acc = TimeWeightedAccumulator()
        t = 0.0
        for dt, flag in steps:
            t += dt
            acc.update(t, 1.0 if flag else 0.0)
        acc.finalize(t + 0.5)
        assert acc.time_average() == pytest.approx(acc.fraction_nonzero())


class TestTokenConservationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(0, 10**6),
        st.floats(0.1, 3.0, allow_nan=False),
    )
    def test_closed_ring_conserves_tokens(self, n_tokens, seed, delay):
        """A ring of deterministic transitions conserves total tokens."""
        net = PetriNet("ring")
        n_places = 4
        for i in range(n_places):
            net.add_place(f"P{i}", initial_tokens=n_tokens if i == 0 else 0)
        for i in range(n_places):
            net.add_transition(
                f"t{i}",
                Deterministic(delay),
                inputs=[f"P{i}"],
                outputs=[f"P{(i + 1) % n_places}"],
            )
        result = simulate(net, horizon=50.0, seed=seed)
        assert sum(result.final_marking_counts.values()) == n_tokens

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6), st.floats(0.2, 2.0), st.floats(2.5, 8.0))
    def test_open_system_flow_balance(self, seed, lam, mu):
        """Arrivals = served + still queued at every instant."""
        net = PetriNet("flow")
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_place("done")
        net.add_transition("arrive", Exponential(lam), inputs=["src"], outputs=["src", "q"])
        net.add_transition("serve", Exponential(mu), inputs=["q"], outputs=["done"])
        result = simulate(net, horizon=200.0, seed=seed)
        arrived = result.stats.firing_count("arrive")
        served = result.stats.firing_count("serve")
        assert arrived == served + result.final_marking_counts["q"]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_occupancies_are_probabilities(self, seed):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition("a", Exponential(1.0), inputs=["src"], outputs=["src", "q"])
        net.add_transition("s", Exponential(2.0), inputs=["q"])
        result = simulate(net, horizon=100.0, seed=seed)
        for place in ("src", "q"):
            assert 0.0 <= result.occupancy(place) <= 1.0


class TestDistributionProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.1, 20.0, allow_nan=False))
    def test_exponential_samples_nonnegative(self, rate):
        d = Exponential(rate)
        rng = np.random.default_rng(0)
        assert all(d.sample(rng) >= 0 for _ in range(50))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 100.0, allow_nan=False))
    def test_deterministic_sample_equals_mean(self, delay):
        d = Deterministic(delay)
        rng = np.random.default_rng(0)
        assert d.sample(rng) == d.mean() == delay
