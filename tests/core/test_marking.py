"""Unit tests for markings and marking views."""

import pytest

from repro.core import CapacityError, UnknownElementError
from repro.core.marking import Marking
from repro.core.places import Place
from repro.core.tokens import Token


def make_marking(**initial):
    places = [Place(name, tokens) for name, tokens in initial.items()]
    return Marking(places)


class TestConstruction:
    def test_initial_counts(self):
        m = make_marking(A=2, B=0)
        assert m.count("A") == 2
        assert m.count("B") == 0
        assert m.counts() == {"A": 2, "B": 0}

    def test_initial_override_int(self):
        places = [Place("A", 1)]
        m = Marking(places, initial={"A": 5})
        assert m.count("A") == 5

    def test_initial_override_tokens(self):
        places = [Place("A")]
        m = Marking(places, initial={"A": [Token(7), Token(8)]})
        assert m.bag("A").colors() == [7, 8]

    def test_unknown_override_rejected(self):
        with pytest.raises(UnknownElementError):
            Marking([Place("A")], initial={"B": 1})

    def test_capacity_enforced_at_init(self):
        with pytest.raises(CapacityError):
            Marking([Place("A", 0, capacity=1)], initial={"A": 2})

    def test_colored_initial_marking(self):
        place = Place("A", [Token(1), Token(2)])
        m = Marking([place])
        assert m.bag("A").colors() == [1, 2]


class TestMutation:
    def test_deposit_and_withdraw(self):
        m = make_marking(A=0)
        m.deposit("A", [Token(1), Token(2)])
        assert m.count("A") == 2
        taken = m.withdraw("A", 1)
        assert taken[0].color == 1
        assert m.count("A") == 1

    def test_withdraw_with_predicate(self):
        m = make_marking(A=0)
        m.deposit("A", [Token(1), Token(2)])
        taken = m.withdraw("A", 1, lambda t: t.color == 2)
        assert taken[0].color == 2

    def test_can_withdraw(self):
        m = make_marking(A=2)
        assert m.can_withdraw("A", 2)
        assert not m.can_withdraw("A", 3)

    def test_capacity_on_deposit(self):
        m = Marking([Place("A", 0, capacity=2)])
        m.deposit("A", [Token(), Token()])
        with pytest.raises(CapacityError):
            m.deposit("A", [Token()])

    def test_headroom(self):
        m = Marking([Place("A", 1, capacity=2)])
        assert m.has_headroom("A", 1)
        assert not m.has_headroom("A", 2)
        m2 = make_marking(B=0)
        assert m2.has_headroom("B", 10**6)

    def test_unknown_place(self):
        m = make_marking(A=0)
        with pytest.raises(UnknownElementError):
            m.count("Z")

    def test_total_tokens(self):
        m = make_marking(A=2, B=3)
        assert m.total_tokens() == 5


class TestSnapshots:
    def test_signature_ignores_token_identity(self):
        m1 = make_marking(A=0)
        m1.deposit("A", [Token(1), Token(2)])
        m2 = make_marking(A=0)
        m2.deposit("A", [Token(2), Token(1)])  # different order
        assert m1.signature() == m2.signature()

    def test_signature_distinguishes_colors(self):
        m1 = make_marking(A=0)
        m1.deposit("A", [Token(1)])
        m2 = make_marking(A=0)
        m2.deposit("A", [Token(2)])
        assert m1.signature() != m2.signature()

    def test_signature_is_hashable(self):
        m = make_marking(A=1, B=2)
        assert hash(m.signature()) == hash(m.signature())

    def test_copy_independent(self):
        m = make_marking(A=1)
        clone = m.copy()
        clone.deposit("A", [Token()])
        assert m.count("A") == 1
        assert clone.count("A") == 2

    def test_view_is_read_only_protocol(self):
        m = make_marking(A=2)
        view = m.view()
        assert view.count("A") == 2
        assert view.counts() == {"A": 2}
        assert not hasattr(view, "deposit")

    def test_view_sees_mutations(self):
        m = make_marking(A=0)
        view = m.view()
        m.deposit("A", [Token(9)])
        assert view.count("A") == 1
        assert view.colors("A") == [9]
