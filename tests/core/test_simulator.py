"""Unit + behavioural tests for the simulation engine."""

import numpy as np
import pytest

from repro.core import (
    DeadlockError,
    Deterministic,
    Exponential,
    ImmediateLoopError,
    Immediate,
    INFINITE_SERVERS,
    MemoryPolicy,
    PetriNet,
    Simulation,
    simulate,
    tokens_eq,
    tokens_gt,
)


def chain_net(delay=1.0):
    """A -> B -> C with two deterministic transitions."""
    net = PetriNet("chain")
    net.add_place("A", initial_tokens=1)
    net.add_place("B")
    net.add_place("C")
    net.add_transition("ab", Deterministic(delay), inputs=["A"], outputs=["B"])
    net.add_transition("bc", Deterministic(delay), inputs=["B"], outputs=["C"])
    return net


class TestBasicTokenGame:
    def test_deterministic_chain_fires_in_order(self):
        result = simulate(chain_net(), horizon=10.0, seed=0)
        assert result.final_marking_counts == {"A": 0, "B": 0, "C": 1}
        assert result.firings == 2

    def test_dwell_times_exact_for_deterministic_chain(self):
        result = simulate(chain_net(delay=2.0), horizon=10.0, seed=0)
        # A marked [0,2), B [2,4), C [4,10)
        assert result.occupancy("A") == pytest.approx(0.2)
        assert result.occupancy("B") == pytest.approx(0.2)
        assert result.occupancy("C") == pytest.approx(0.6)

    def test_immediate_fires_in_zero_time(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", inputs=["A"], outputs=["B"])
        result = simulate(net, horizon=5.0)
        assert result.occupancy("A") == pytest.approx(0.0)
        assert result.occupancy("B") == pytest.approx(1.0)

    def test_multiplicity_consumption(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=4)
        net.add_place("B")
        net.add_transition(
            "t", Deterministic(1.0), inputs=[("A", 2)], outputs=["B"]
        )
        result = simulate(net, horizon=10.0)
        # fires twice (4 tokens / 2 per firing), single server => t=1, 2
        assert result.final_marking_counts == {"A": 0, "B": 2}
        assert result.firings == 2

    def test_deadlock_detection_stop(self):
        result = simulate(chain_net(), horizon=100.0)
        assert result.deadlocked
        assert result.end_time == 100.0  # frozen marking integrates to horizon

    def test_deadlock_raise_mode(self):
        net = chain_net()
        sim = Simulation(net, on_deadlock="raise")
        with pytest.raises(DeadlockError):
            sim.run(100.0)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            simulate(chain_net(), horizon=0.0)

    def test_max_firings_stops_early(self):
        net = PetriNet()
        net.add_place("P", initial_tokens=1)
        net.add_transition("loop", Deterministic(1.0), inputs=["P"], outputs=["P"])
        sim = Simulation(net)
        result = sim.run(1000.0, max_firings=5)
        assert result.firings == 5
        assert result.end_time == pytest.approx(5.0)


class TestImmediateSemantics:
    def test_priority_order(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("LO")
        net.add_place("HI")
        net.add_transition("lo", inputs=["A"], outputs=["LO"], priority=1)
        net.add_transition("hi", inputs=["A"], outputs=["HI"], priority=9)
        result = simulate(net, horizon=1.0, seed=1)
        assert result.final_marking_counts["HI"] == 1
        assert result.final_marking_counts["LO"] == 0

    def test_weighted_tie_break(self):
        wins = {"x": 0, "y": 0}
        for seed in range(300):
            net = PetriNet()
            net.add_place("A", initial_tokens=1)
            net.add_place("X")
            net.add_place("Y")
            net.add_transition("x", inputs=["A"], outputs=["X"], weight=3.0)
            net.add_transition("y", inputs=["A"], outputs=["Y"], weight=1.0)
            r = simulate(net, horizon=1.0, seed=seed)
            if r.final_marking_counts["X"]:
                wins["x"] += 1
            else:
                wins["y"] += 1
        # expected 3:1 split
        assert 0.6 < wins["x"] / 300 < 0.9

    def test_vanishing_loop_detected(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("ab", inputs=["A"], outputs=["B"])
        net.add_transition("ba", inputs=["B"], outputs=["A"])
        sim = Simulation(net, max_immediate_firings=100)
        with pytest.raises(ImmediateLoopError):
            sim.run(1.0)

    def test_guard_blocks_immediate(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("G")
        net.add_transition(
            "t", inputs=["A"], outputs=["B"], guard=tokens_gt("G", 0)
        )
        result = simulate(net, horizon=1.0)
        assert result.final_marking_counts["A"] == 1  # guard never true


class TestTimedSemantics:
    def test_enabling_memory_resets_timer(self):
        # PDT-style: timer disabled by guard before expiry must restart.
        net = PetriNet()
        net.add_place("Idle", initial_tokens=1)
        net.add_place("Sleep")
        net.add_place("Job")
        net.add_place("Src", initial_tokens=1)
        # A job arrives at t=1 (deterministic), is serviced at t=2.
        net.add_transition("arrive", Deterministic(1.0), inputs=["Src"], outputs=["Job"])
        net.add_transition("serve", Deterministic(1.0), inputs=["Job"])
        # PDT of 1.5s, guard no jobs: enabled [0,1) then [2, 3.5)
        net.add_transition(
            "pdt",
            Deterministic(1.5),
            inputs=["Idle"],
            outputs=["Sleep"],
            guard=tokens_eq("Job", 0),
            memory=MemoryPolicy.ENABLING,
        )
        result = simulate(net, horizon=10.0)
        # With enabling memory the timer restarts at t=2 -> fires 3.5.
        assert result.occupancy("Sleep") == pytest.approx((10 - 3.5) / 10)

    def test_age_memory_resumes_timer(self):
        net = PetriNet()
        net.add_place("Idle", initial_tokens=1)
        net.add_place("Sleep")
        net.add_place("Job")
        net.add_place("Src", initial_tokens=1)
        net.add_transition("arrive", Deterministic(1.0), inputs=["Src"], outputs=["Job"])
        net.add_transition("serve", Deterministic(1.0), inputs=["Job"])
        net.add_transition(
            "pdt",
            Deterministic(1.5),
            inputs=["Idle"],
            outputs=["Sleep"],
            guard=tokens_eq("Job", 0),
            memory=MemoryPolicy.AGE,
        )
        result = simulate(net, horizon=10.0)
        # Age memory: 1.0s consumed before preemption, 0.5s after resume
        # at t=2 -> fires at 2.5.
        assert result.occupancy("Sleep") == pytest.approx((10 - 2.5) / 10)

    def test_exponential_race_two_transitions(self):
        # Two exponential competitors from the same place: winner
        # probability proportional to rate.
        wins = 0
        trials = 400
        for seed in range(trials):
            net = PetriNet()
            net.add_place("A", initial_tokens=1)
            net.add_place("X")
            net.add_place("Y")
            net.add_transition("x", Exponential(3.0), inputs=["A"], outputs=["X"])
            net.add_transition("y", Exponential(1.0), inputs=["A"], outputs=["Y"])
            r = simulate(net, horizon=100.0, seed=seed)
            if r.final_marking_counts["X"]:
                wins += 1
        assert 0.67 < wins / trials < 0.83  # expect 0.75

    def test_single_server_serialises(self):
        net = PetriNet()
        net.add_place("Q", initial_tokens=3)
        net.add_place("Done")
        net.add_transition(
            "serve", Deterministic(1.0), inputs=["Q"], outputs=["Done"]
        )
        result = simulate(net, horizon=10.0)
        # single server: completions at 1, 2, 3
        assert result.final_marking_counts["Done"] == 3
        assert result.mean_tokens("Q") == pytest.approx((3 + 2 + 1) / 10.0)

    def test_infinite_server_parallelises(self):
        net = PetriNet()
        net.add_place("Q", initial_tokens=3)
        net.add_place("Done")
        net.add_transition(
            "serve",
            Deterministic(1.0),
            inputs=["Q"],
            outputs=["Done"],
            servers=INFINITE_SERVERS,
        )
        result = simulate(net, horizon=10.0)
        # all three complete at t=1
        assert result.final_marking_counts["Done"] == 3
        assert result.mean_tokens("Q") == pytest.approx(3 * 1.0 / 10.0)

    def test_k_server_cap(self):
        net = PetriNet()
        net.add_place("Q", initial_tokens=4)
        net.add_place("Done")
        net.add_transition(
            "serve", Deterministic(1.0), inputs=["Q"], outputs=["Done"], servers=2
        )
        result = simulate(net, horizon=10.0)
        # two at a time: completions at 1,1,2,2
        assert result.final_marking_counts["Done"] == 4
        assert result.mean_tokens("Q") == pytest.approx((4 + 2) * 1.0 / 10.0)

    def test_inhibitor_blocks(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("Block", initial_tokens=1)
        net.add_transition(
            "t", Deterministic(1.0), inputs=["A"], outputs=["B"],
            inhibitors=["Block"],
        )
        result = simulate(net, horizon=5.0)
        assert result.final_marking_counts["B"] == 0

    def test_inhibitor_releases(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("Block", initial_tokens=1)
        net.add_transition("unblock", Deterministic(2.0), inputs=["Block"])
        net.add_transition(
            "t", Deterministic(1.0), inputs=["A"], outputs=["B"],
            inhibitors=["Block"],
        )
        result = simulate(net, horizon=10.0)
        # Block leaves at t=2; t fires at 3.
        assert result.final_marking_counts["B"] == 1
        assert result.occupancy("B") == pytest.approx(0.7)


class TestColoredSemantics:
    def test_color_filter_dispatch(self):
        from repro.core import color_eq
        net = PetriNet()
        net.add_place("Jobs")
        net.add_place("Src", initial_tokens=1)
        net.add_place("Fast")
        net.add_place("Slow")
        # alternate colors 1, 2 via producer
        counter = {"n": 0}

        def color_producer(ctx):
            counter["n"] += 1
            return 1 if counter["n"] % 2 else 2

        net.add_transition(
            "gen", Deterministic(1.0), inputs=["Src"],
            outputs=["Src", ("Jobs", 1, color_producer)],
        )
        net.add_transition(
            "fast", Deterministic(0.1),
            inputs=[("Jobs", 1, color_eq(1))], outputs=["Fast"],
        )
        net.add_transition(
            "slow", Deterministic(0.1),
            inputs=[("Jobs", 1, color_eq(2))], outputs=["Slow"],
        )
        result = simulate(net, horizon=10.5)
        assert result.final_marking_counts["Fast"] == 5
        assert result.final_marking_counts["Slow"] == 5

    def test_color_forwarding_through_chain(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=0)
        net.add_place("B")
        net.add_place("Src", initial_tokens=1)
        net.add_transition(
            "gen", Deterministic(1.0), inputs=["Src"], outputs=[("A", 1, 42)]
        )
        net.add_transition("move", Deterministic(1.0), inputs=["A"], outputs=["B"])
        sim = Simulation(net)
        colors = []
        sim.add_observer(
            lambda t, name, consumed, produced: colors.extend(
                tok.color for tok in produced
            )
        )
        sim.run(3.0)
        assert 42 in colors  # forwarded from A to B


class TestStatisticsIntegration:
    def test_predicate_tracking(self):
        net = chain_net(delay=2.0)
        sim = Simulation(net)
        sim.add_predicate("ab_or_b", lambda v: v.count("B") > 0)
        result = sim.run(10.0)
        assert result.predicate_probability("ab_or_b") == pytest.approx(0.2)

    def test_signal_batch_means(self):
        net = PetriNet()
        net.add_place("P", initial_tokens=1)
        net.add_transition("loop", Deterministic(1.0), inputs=["P"], outputs=["P"])
        sim = Simulation(net)
        sim.track_signal("tokens", lambda v: float(v.count("P")), horizon=10.0)
        result = sim.run(10.0)
        ci = result.batch_means["tokens"].interval()
        assert ci.mean == pytest.approx(1.0)

    def test_reproducibility_same_seed(self):
        def run(seed):
            net = PetriNet()
            net.add_place("src", initial_tokens=1)
            net.add_place("q")
            net.add_transition("a", Exponential(1.0), inputs=["src"], outputs=["src", "q"])
            net.add_transition("s", Exponential(1.5), inputs=["q"])
            return simulate(net, horizon=500.0, seed=seed)

        r1, r2 = run(7), run(7)
        assert r1.firings == r2.firings
        assert r1.mean_tokens("q") == pytest.approx(r2.mean_tokens("q"))

    def test_different_seeds_differ(self):
        def run(seed):
            net = PetriNet()
            net.add_place("src", initial_tokens=1)
            net.add_place("q")
            net.add_transition("a", Exponential(1.0), inputs=["src"], outputs=["src", "q"])
            net.add_transition("s", Exponential(1.5), inputs=["q"])
            return simulate(net, horizon=500.0, seed=seed)

        assert run(1).firings != run(2).firings


class TestMM1Validation:
    """The engine must reproduce M/M/1 theory (cross-validation anchor)."""

    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.8])
    def test_mean_queue_length(self, rho):
        lam, mu = rho, 1.0
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition("arrive", Exponential(lam), inputs=["src"], outputs=["src", "q"])
        net.add_transition("serve", Exponential(mu), inputs=["q"])
        result = simulate(net, horizon=80_000.0, seed=42, warmup=2000.0)
        expected = rho / (1 - rho)
        assert result.mean_tokens("q") == pytest.approx(expected, rel=0.08)
        assert result.occupancy("q") == pytest.approx(rho, rel=0.05)


class TestDeterministicTieOrder:
    """Equal-time firings resolve by timed-transition definition order.

    The ``EventCalendar`` rank hook (see ``repro.core.events``) makes
    simultaneous events pop by (definition order, server slot) instead
    of schedule insertion order — the policy the vectorized engine's
    first-occurrence argmin applies for free.
    """

    def test_definition_order_beats_schedule_order(self):
        net = PetriNet("tie")
        # "first" is *defined* first but *scheduled* last: it only
        # enables at t=3 (when "feed" delivers B) yet its firing time
        # ties with "second" at t=5.  Insertion order would fire
        # "second" first; definition-order rank fires "first" first.
        net.add_place("B")
        net.add_place("C")
        net.add_place("S", initial_tokens=1)
        net.add_place("D")
        net.add_place("A", initial_tokens=1)
        net.add_transition("first", Deterministic(2.0), inputs=["B"], outputs=["C"])
        net.add_transition("second", Deterministic(5.0), inputs=["S"], outputs=["D"])
        net.add_transition("feed", Deterministic(3.0), inputs=["A"], outputs=["B"])
        sim = Simulation(net)
        order = []
        sim.add_observer(lambda t, name, consumed, produced: order.append((t, name)))
        sim.run(10.0)
        assert order == [(3.0, "feed"), (5.0, "first"), (5.0, "second")]

    def test_tie_order_is_stable_across_runs(self):
        def run_once():
            net = PetriNet("tie2")
            net.add_place("P", initial_tokens=3)
            net.add_place("Q")
            net.add_transition("a", Deterministic(4.0), inputs=["P"], outputs=["Q"])
            net.add_transition("b", Deterministic(4.0), inputs=["P"], outputs=["Q"])
            sim = Simulation(net)
            order = []
            sim.add_observer(lambda t, name, c, p: order.append(name))
            sim.run(4.0)
            return order

        assert run_once() == run_once() == ["a", "b"]


class TestStaleSchedule:
    """Regression: a popped event whose transition went stale.

    The engine's own invariant is scheduled => enabled, but a caller
    mutating the calendar (or marking) directly can break it.  The
    defensive branch in ``Simulation.step()`` must treat the stale pop
    as a non-firing event: advance the clock, sample statistics at the
    new time, count it in ``stale_pops`` — never silently skip the
    epoch.
    """

    @staticmethod
    def _net():
        net = PetriNet("stale")
        net.add_place("P", initial_tokens=1)
        net.add_place("Q")
        net.add_place("Empty")
        net.add_place("R")
        net.add_transition("go", Deterministic(5.0), inputs=["P"], outputs=["Q"])
        net.add_transition("never", Deterministic(1.0), inputs=["Empty"], outputs=["R"])
        return net

    def _stale_sim(self):
        sim = Simulation(self._net())
        # Initialize first so _refresh_timed can't cancel the bogus
        # entry before the run starts, then violate the invariant by
        # scheduling the disabled transition directly.
        sim._initialize()
        assert not sim.calendar.is_scheduled("never#0")
        sim.calendar.schedule("never#0", 2.0)
        return sim

    def test_stale_pop_advances_clock(self):
        sim = self._stale_sim()
        assert sim.step()  # pops the bogus never#0 event
        assert sim.time == 2.0
        assert sim.stale_pops == 1
        assert sim.firings == 0  # a stale pop is not a firing

    def test_stale_pop_keeps_statistics_in_sync(self):
        sim = self._stale_sim()
        result = sim.run(10.0)
        assert sim.stale_pops == 1
        assert result.firings == 1  # only "go", at t=5
        assert result.stats.firing_count("never") == 0
        # Time-weighted occupancies must be exact despite the stale
        # epoch at t=2: P holds its token for [0, 5) of the 10 s run.
        assert result.occupancy("P") == pytest.approx(0.5)
        assert result.occupancy("Q") == pytest.approx(0.5)
        assert result.final_marking_counts["Q"] == 1

    def test_clean_run_has_no_stale_pops(self):
        sim = Simulation(self._net())
        sim.run(10.0)
        assert sim.stale_pops == 0
