"""Unit tests for structural property checks."""

import pytest

from repro.analysis import (
    boundedness,
    check_model_invariants,
    is_conservative,
    liveness_summary,
)
from repro.core import Deterministic, Exponential, PetriNet


def ring_net():
    net = PetriNet("ring")
    for i in range(3):
        net.add_place(f"P{i}", initial_tokens=1 if i == 0 else 0)
    for i in range(3):
        net.add_transition(
            f"t{i}", Deterministic(1.0), inputs=[f"P{i}"], outputs=[f"P{(i+1)%3}"]
        )
    return net


class TestBoundedness:
    def test_safe_ring(self):
        report = boundedness(ring_net())
        assert report.k == 1
        assert report.is_safe
        assert report.n_states == 3

    def test_multi_token(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=3)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["A"], outputs=["B"])
        report = boundedness(net)
        assert report.k == 3
        assert not report.is_safe
        assert report.bounds["B"] == 3

    def test_report_str(self):
        assert "bounded" in str(boundedness(ring_net()))


class TestConservative:
    def test_ring_conservative(self):
        assert is_conservative(ring_net())

    def test_sink_not_conservative(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Exponential(1.0), inputs=["A"], outputs=["A", "B"])
        net.add_transition("drop", Exponential(1.0), inputs=["B"])
        assert not is_conservative(net)


class TestLiveness:
    def test_ring_live(self):
        report = liveness_summary(ring_net())
        assert report.live == {"t0", "t1", "t2"}
        assert not report.dead
        assert report.deadlock_free

    def test_dead_transition_found(self):
        net = ring_net()
        net.add_place("never")
        net.add_place("sink")
        net.add_transition("dead", Deterministic(1.0), inputs=["never"], outputs=["sink"])
        report = liveness_summary(net)
        assert "dead" in report.dead

    def test_deadlock_counted(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["A"], outputs=["B"])
        report = liveness_summary(net)
        assert report.deadlock_markings == 1
        assert not report.deadlock_free


class TestDeclaredInvariants:
    def test_valid_declaration_passes(self):
        check_model_invariants(ring_net(), [("ring", ["P0", "P1", "P2"])])

    def test_violation_raises_with_label(self):
        with pytest.raises(ValueError, match="partial-ring"):
            check_model_invariants(ring_net(), [("partial-ring", ["P0", "P1"])])
