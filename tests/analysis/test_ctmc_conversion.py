"""Unit tests for SPN → CTMC conversion with vanishing elimination."""

import numpy as np
import pytest

from repro.analysis import spn_to_ctmc
from repro.core import (
    Deterministic,
    Exponential,
    NotExponentialError,
    PetriNet,
    UnboundedNetError,
    tokens_gt,
)
from repro.markov import CTMC, BirthDeathChain


def mm1k_net(lam=1.0, mu=2.0, K=5):
    net = PetriNet("mm1k")
    net.add_place("src", initial_tokens=1)
    net.add_place("q")
    net.add_place("slots", initial_tokens=K)
    net.add_transition("arrive", Exponential(lam), inputs=["src", "slots"], outputs=["src", "q"])
    net.add_transition("serve", Exponential(mu), inputs=["q"], outputs=["slots"])
    return net


class TestConversion:
    def test_mm1k_states(self):
        ctmc = spn_to_ctmc(mm1k_net(K=5))
        assert ctmc.n_states == 6  # 0..5 jobs

    def test_generator_rows_sum_to_zero(self):
        ctmc = spn_to_ctmc(mm1k_net())
        assert np.allclose(ctmc.Q.sum(axis=1), 0.0, atol=1e-12)

    def test_steady_state_matches_birth_death(self):
        lam, mu, K = 1.0, 2.0, 8
        ctmc = spn_to_ctmc(mm1k_net(lam, mu, K))
        pi = CTMC(ctmc.Q).steady_state()
        expected = BirthDeathChain.mm1k(lam, mu, K).mean_population()
        assert ctmc.expected_tokens(pi, "q") == pytest.approx(expected, rel=1e-9)

    def test_place_marginal(self):
        lam, mu, K = 1.0, 2.0, 8
        ctmc = spn_to_ctmc(mm1k_net(lam, mu, K))
        pi = CTMC(ctmc.Q).steady_state()
        bd = BirthDeathChain.mm1k(lam, mu, K).steady_state()
        assert ctmc.place_marginal(pi, "q") == pytest.approx(1 - bd[0], rel=1e-9)

    def test_deterministic_transition_rejected(self):
        net = mm1k_net()
        net.add_place("x", initial_tokens=1)
        net.add_place("y")
        net.add_transition("det", Deterministic(1.0), inputs=["x"], outputs=["y"])
        with pytest.raises(NotExponentialError):
            spn_to_ctmc(net)

    def test_unbounded_rejected(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition("gen", Exponential(1.0), inputs=["src"], outputs=["src", "q"])
        with pytest.raises(UnboundedNetError):
            spn_to_ctmc(net, max_states=20)


class TestVanishingElimination:
    def test_immediate_chain_collapsed(self):
        # src -> (exp) -> V -> (imm) -> T: V never appears as a CTMC state.
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("V")
        net.add_place("B")
        net.add_transition("slow", Exponential(1.0), inputs=["A"], outputs=["V"])
        net.add_transition("imm", inputs=["V"], outputs=["B"])
        net.add_transition("back", Exponential(2.0), inputs=["B"], outputs=["A"])
        ctmc = spn_to_ctmc(net)
        assert ctmc.n_states == 2
        for counts in ctmc.counts:
            assert counts["V"] == 0

    def test_weighted_immediate_split(self):
        # After the exponential, an immediate conflict splits 3:1.
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("V")
        net.add_place("X")
        net.add_place("Y")
        net.add_transition("go", Exponential(1.0), inputs=["A"], outputs=["V"])
        net.add_transition("to_x", inputs=["V"], outputs=["X"], weight=3.0)
        net.add_transition("to_y", inputs=["V"], outputs=["Y"], weight=1.0)
        net.add_transition("back_x", Exponential(1.0), inputs=["X"], outputs=["A"])
        net.add_transition("back_y", Exponential(1.0), inputs=["Y"], outputs=["A"])
        ctmc = spn_to_ctmc(net)
        pi = CTMC(ctmc.Q).steady_state()
        px = ctmc.place_marginal(pi, "X")
        py = ctmc.place_marginal(pi, "Y")
        assert px / py == pytest.approx(3.0, rel=1e-9)

    def test_priority_respected_in_vanishing(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("V")
        net.add_place("HI")
        net.add_place("LO")
        net.add_transition("go", Exponential(1.0), inputs=["A"], outputs=["V"])
        net.add_transition("hi", inputs=["V"], outputs=["HI"], priority=5)
        net.add_transition("lo", inputs=["V"], outputs=["LO"], priority=1)
        net.add_transition("back", Exponential(1.0), inputs=["HI"], outputs=["A"])
        ctmc = spn_to_ctmc(net)
        # LO is never reached.
        assert all(c["LO"] == 0 for c in ctmc.counts)

    def test_vanishing_initial_marking(self):
        net = PetriNet()
        net.add_place("V", initial_tokens=1)
        net.add_place("A")
        net.add_place("B")
        net.add_transition("imm", inputs=["V"], outputs=["A"])
        net.add_transition("flow", Exponential(1.0), inputs=["A"], outputs=["B"])
        net.add_transition("back", Exponential(1.0), inputs=["B"], outputs=["A"])
        ctmc = spn_to_ctmc(net)
        # initial distribution concentrated on the tangible resolution
        i = int(np.argmax(ctmc.initial_distribution))
        assert ctmc.counts[i]["A"] == 1
        assert ctmc.initial_distribution.sum() == pytest.approx(1.0)


class TestRateSemantics:
    def test_multi_server_rate_scaling(self):
        # Two tokens, infinite-server exponential: exit rate doubles.
        from repro.core.transitions import INFINITE_SERVERS
        net = PetriNet()
        net.add_place("q", initial_tokens=2)
        net.add_place("done")
        net.add_transition(
            "serve", Exponential(1.0), inputs=["q"], outputs=["done"],
            servers=INFINITE_SERVERS,
        )
        ctmc = spn_to_ctmc(net)
        # state with 2 tokens must have total exit rate 2.0
        idx2 = next(i for i, c in enumerate(ctmc.counts) if c["q"] == 2)
        assert -ctmc.Q[idx2, idx2] == pytest.approx(2.0)

    def test_single_server_rate_flat(self):
        net = PetriNet()
        net.add_place("q", initial_tokens=2)
        net.add_place("done")
        net.add_transition("serve", Exponential(1.0), inputs=["q"], outputs=["done"])
        ctmc = spn_to_ctmc(net)
        idx2 = next(i for i, c in enumerate(ctmc.counts) if c["q"] == 2)
        assert -ctmc.Q[idx2, idx2] == pytest.approx(1.0)
