"""Unit tests for reachability-graph construction."""

import pytest

from repro.analysis import build_reachability_graph
from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    UnboundedNetError,
    tokens_gt,
)


def ring_net(tokens=1):
    net = PetriNet("ring")
    for i in range(3):
        net.add_place(f"P{i}", initial_tokens=tokens if i == 0 else 0)
    for i in range(3):
        net.add_transition(
            f"t{i}", Deterministic(1.0), inputs=[f"P{i}"], outputs=[f"P{(i+1)%3}"]
        )
    return net


class TestReachability:
    def test_ring_state_count(self):
        rg = build_reachability_graph(ring_net())
        assert rg.n_states == 3
        assert rg.n_edges == 3
        assert rg.strongly_connected()

    def test_two_token_ring(self):
        rg = build_reachability_graph(ring_net(tokens=2))
        # distribute 2 tokens over 3 places: C(4,2) = 6 states
        assert rg.n_states == 6

    def test_bounds(self):
        rg = build_reachability_graph(ring_net(tokens=2))
        assert rg.max_tokens("P0") == 2
        assert rg.bound_vector() == {"P0": 2, "P1": 2, "P2": 2}

    def test_deadlock_detection(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["A"], outputs=["B"])
        rg = build_reachability_graph(net)
        assert len(rg.deadlock_states()) == 1
        assert not rg.strongly_connected()

    def test_unbounded_net_raises(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition(
            "gen", Exponential(1.0), inputs=["src"], outputs=["src", "q"]
        )
        with pytest.raises(UnboundedNetError):
            build_reachability_graph(net, max_states=50)

    def test_immediate_priority_restricts_successors(self):
        # When an immediate is enabled, timed transitions do not appear
        # as successors (vanishing-marking rule).
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("C")
        net.add_transition("imm", inputs=["A"], outputs=["B"])
        net.add_transition("timed", Deterministic(1.0), inputs=["A"], outputs=["C"])
        rg = build_reachability_graph(net)
        labels = {
            d["transition"] for _, _, d in rg.graph.edges(data=True)
        }
        assert labels == {"imm"}

    def test_guard_respected(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_place("G")
        net.add_transition(
            "t", Deterministic(1.0), inputs=["A"], outputs=["B"],
            guard=tokens_gt("G", 0),
        )
        rg = build_reachability_graph(net)
        assert rg.n_states == 1  # guard never satisfiable

    def test_home_states_of_ergodic_ring(self):
        rg = build_reachability_graph(ring_net())
        assert len(rg.home_states()) == 3

    def test_counts_of(self):
        rg = build_reachability_graph(ring_net())
        counts = rg.counts_of(rg.initial)
        assert counts["P0"] == 1

    def test_liveness_via_graph(self):
        rg = build_reachability_graph(ring_net())
        assert rg.is_live_transition("t0")
        assert not rg.is_live_transition("nonexistent")
