"""Unit + property tests for P/T-invariant computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    conserved_token_sum,
    nullspace_invariants,
    p_invariants,
    t_invariants,
)
from repro.core import Deterministic, Exponential, PetriNet, simulate


def ring_net(n=3):
    net = PetriNet("ring")
    for i in range(n):
        net.add_place(f"P{i}", initial_tokens=1 if i == 0 else 0)
    for i in range(n):
        net.add_transition(
            f"t{i}", Deterministic(1.0), inputs=[f"P{i}"], outputs=[f"P{(i+1)%n}"]
        )
    return net


class TestPInvariants:
    def test_ring_has_full_cover(self):
        invs = p_invariants(ring_net())
        assert len(invs) == 1
        inv = invs[0]
        assert inv.support == {"P0", "P1", "P2"}
        assert all(w == 1 for _, w in inv.weights)

    def test_invariant_holds_under_simulation(self):
        net = ring_net(4)
        invs = p_invariants(net)
        m0 = net.initial_marking().counts()
        result = simulate(net, horizon=20.0, seed=1)
        for inv in invs:
            assert inv.evaluate(result.final_marking_counts) == inv.evaluate(m0)

    def test_weighted_invariant(self):
        # t consumes 2 from A, produces 1 in B => invariant A + 2B
        net = PetriNet()
        net.add_place("A", initial_tokens=4)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=[("A", 2)], outputs=["B"])
        invs = p_invariants(net)
        assert len(invs) == 1
        weights = dict(invs[0].weights)
        assert weights == {"A": 1, "B": 2}

    def test_open_net_has_no_full_invariant(self):
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition("gen", Exponential(1.0), inputs=["src"], outputs=["src", "q"])
        net.add_transition("sink", Exponential(1.0), inputs=["q"])
        invs = p_invariants(net)
        # q is not conserved; the only invariant is the src self-loop.
        supports = [inv.support for inv in invs]
        assert frozenset({"src"}) in supports
        assert all("q" not in s for s in supports)


class TestTInvariants:
    def test_ring_t_invariant_is_one_cycle(self):
        invs = t_invariants(ring_net())
        assert len(invs) == 1
        assert dict(invs[0].weights) == {"t0": 1, "t1": 1, "t2": 1}

    def test_acyclic_net_has_none(self):
        net = PetriNet()
        net.add_place("A", initial_tokens=1)
        net.add_place("B")
        net.add_transition("t", Deterministic(1.0), inputs=["A"], outputs=["B"])
        assert t_invariants(net) == []


class TestHelpers:
    def test_conserved_token_sum(self):
        net = ring_net()
        assert conserved_token_sum(net, ["P0", "P1", "P2"])
        assert not conserved_token_sum(net, ["P0", "P1"])

    def test_nullspace_dimension_matches_farkas(self):
        net = ring_net(5)
        ns = nullspace_invariants(net)
        assert ns.shape[0] == 1  # one conservation law

    def test_nullspace_rows_are_invariants(self):
        net = ring_net(4)
        _, _, C = net.incidence_matrix()
        ns = nullspace_invariants(net)
        assert np.allclose(ns @ C, 0.0, atol=1e-9)


class TestInvariantObject:
    def test_str_and_weight_of(self):
        net = ring_net()
        inv = p_invariants(net)[0]
        assert "P0" in str(inv)
        assert inv.weight_of("P0") == 1
        assert inv.weight_of("nope") == 0


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 3))
    def test_random_rings_conserve(self, n, tokens):
        net = PetriNet("ring")
        for i in range(n):
            net.add_place(f"P{i}", initial_tokens=tokens if i == 0 else 0)
        for i in range(n):
            net.add_transition(
                f"t{i}", Deterministic(0.5),
                inputs=[f"P{i}"], outputs=[f"P{(i+1)%n}"],
            )
        invs = p_invariants(net)
        assert invs, "a closed ring must have a P-invariant"
        _, _, C = net.incidence_matrix()
        for inv in invs:
            y = np.array([inv.weight_of(p) for p in net.place_names])
            assert np.all(y @ C == 0)
