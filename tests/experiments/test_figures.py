"""Tests for the Figs. 4–9 comparison driver (scaled-down horizons)."""

import pytest

from repro.des import CPUStates
from repro.experiments import (
    CPUComparisonConfig,
    run_cpu_comparison,
)

SHORT = CPUComparisonConfig(horizon=300.0, thresholds=(0.001, 0.3, 1.0))


class TestDriver:
    def test_result_shape(self):
        r = run_cpu_comparison(0.001, SHORT)
        assert r.thresholds == (0.001, 0.3, 1.0)
        for est in ("simulation", "markov", "petri"):
            assert len(r.energy_j[est]) == 3
            for state in CPUStates.ALL:
                assert len(r.fractions[est][state]) == 3

    def test_fractions_are_probabilities(self):
        r = run_cpu_comparison(0.3, SHORT)
        for est, per_state in r.fractions.items():
            for state, series in per_state.items():
                assert all(0.0 <= v <= 1.0 for v in series), (est, state)

    def test_energy_positive(self):
        r = run_cpu_comparison(0.3, SHORT)
        for est in r.energy_j:
            assert all(e > 0 for e in r.energy_j[est])

    def test_delta_energy_columns(self):
        r = run_cpu_comparison(0.001, SHORT)
        d = r.delta_energy()
        assert set(d) == {"sim_markov", "sim_petri", "markov_petri"}

    def test_state_series_accessor(self):
        r = run_cpu_comparison(0.001, SHORT)
        assert r.state_series("markov", "idle") == r.fractions["markov"]["idle"]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CPUComparisonConfig(horizon=10.0, warmup=10.0)


class TestScaledPaperShape:
    """Qualitative Fig. 4/7 assertions at reduced horizon."""

    def test_idle_increases_with_threshold(self):
        r = run_cpu_comparison(0.001, SHORT)
        for est in ("simulation", "markov", "petri"):
            idle = r.fractions[est]["idle"]
            assert idle[0] < idle[-1], est

    def test_standby_decreases_with_threshold(self):
        r = run_cpu_comparison(0.001, SHORT)
        for est in ("simulation", "markov", "petri"):
            sb = r.fractions[est]["standby"]
            assert sb[0] > sb[-1], est

    def test_active_roughly_constant(self):
        r = run_cpu_comparison(0.001, SHORT)
        act = r.fractions["simulation"]["active"]
        assert max(act) - min(act) < 0.08

    def test_energy_increases_with_threshold_small_pud(self):
        # Fig. 7: with cheap wake-ups, idling longer only wastes energy.
        r = run_cpu_comparison(0.001, SHORT)
        for est in ("simulation", "markov", "petri"):
            e = r.energy_j[est]
            assert e[-1] > e[0], est

    def test_energy_decreases_with_threshold_huge_pud(self):
        # Fig. 9: with a 10 s wake-up, avoiding sleep saves energy.
        r = run_cpu_comparison(10.0, SHORT)
        for est in ("simulation", "petri"):
            e = r.energy_j[est]
            assert e[-1] < e[0], est


class TestAdaptiveReplication:
    """ci_target comparisons: adaptive runs are prefixes of fixed ones."""

    CFG = CPUComparisonConfig(horizon=60.0, thresholds=(0.001, 1.0))

    def test_cap_run_matches_fixed_run_bit_for_bit(self):
        # An impossible target forces every point to max_replications,
        # at which length the adaptive run IS the fixed run.
        fixed = run_cpu_comparison(0.3, self.CFG, replications=3)
        adaptive = run_cpu_comparison(
            0.3, self.CFG, ci_target=1e-9, max_replications=3
        )
        assert adaptive.energy_j == fixed.energy_j
        assert adaptive.fractions == fixed.fractions
        assert adaptive.converged == [False, False]
        assert adaptive.replication_counts == [3, 3]

    def test_adaptive_reports_energy_ci_and_flags(self):
        adaptive = run_cpu_comparison(
            0.3, self.CFG, ci_target=0.5, max_replications=4
        )
        assert adaptive.energy_ci is not None
        assert all(n >= 2 for n in adaptive.replication_counts)
        for est in ("simulation", "petri"):
            assert len(adaptive.energy_ci[est]) == 2
        # The analytic Markov model never replicates: zero variance.
        assert all(ci.half_width == 0.0 for ci in adaptive.energy_ci["markov"])

    def test_fixed_run_reports_no_convergence_fields(self):
        fixed = run_cpu_comparison(0.3, self.CFG, replications=2)
        assert fixed.converged is None
        assert fixed.replication_counts is None
