"""Tests for the sensitivity-analysis extension."""

import math

import pytest

from repro.experiments import (
    cpu_breakeven_delay,
    cpu_energy_threshold_response,
    node_optimum_vs_rate,
)


class TestCPUThresholdResponse:
    def test_monotone_increasing_at_tiny_delay(self):
        curve = cpu_energy_threshold_response(0.001, (0.001, 0.1, 0.5, 1.0))
        energies = [e for _, e in curve]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_monotone_decreasing_at_huge_delay(self):
        curve = cpu_energy_threshold_response(10.0, (0.001, 0.1, 0.5, 1.0))
        energies = [e for _, e in curve]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_returns_thresholds(self):
        ths = (0.01, 0.02)
        curve = cpu_energy_threshold_response(0.3, ths)
        assert tuple(t for t, _ in curve) == ths


class TestBreakevenDelay:
    def test_finite_and_positive_for_table_iii(self):
        d_star = cpu_breakeven_delay()
        assert 0.0 < d_star < 100.0

    def test_ordering_flips_at_breakeven(self):
        d_star = cpu_breakeven_delay()
        below = cpu_energy_threshold_response(d_star * 0.5, (1e-6, 5.0))
        above = cpu_energy_threshold_response(d_star * 2.0, (1e-6, 5.0))
        # below break-even: sleeping (tiny T) beats idling (large T)
        assert below[0][1] < below[1][1]
        # above break-even: idling wins
        assert above[0][1] > above[1][1]

    def test_cheap_wakeup_extends_breakeven(self):
        # Pricing the power-up state at standby power pushes the
        # break-even delay out, but not to infinity: jobs queueing
        # during a long wake-up still drain at active power afterwards.
        cheap = {"standby": 17.0, "idle": 88.0, "powerup": 17.0, "active": 193.0}
        assert cpu_breakeven_delay(powers_mw=cheap) > cpu_breakeven_delay()

    def test_sleep_never_pays_when_standby_expensive(self):
        powers = {"standby": 88.0, "idle": 88.0, "powerup": 193.0, "active": 193.0}
        assert cpu_breakeven_delay(powers_mw=powers) == 0.0

    def test_unstable_workload_rejected(self):
        with pytest.raises(ValueError):
            cpu_breakeven_delay(arrival_rate=20.0, service_rate=10.0)


class TestNodeOptimumVsRate:
    def test_optimum_pinned_above_radio_phase(self):
        result = node_optimum_vs_rate(
            rates=(0.5, 1.0, 2.0),
            thresholds=(1e-9, 0.00178, 0.01, 1.0, 100.0),
            horizon=120.0,
        )
        # across rates the optimum stays in the just-above-radio-phase
        # cluster — the crossover is intra-cycle, not inter-event
        for t_opt in result.optima:
            assert t_opt in (0.00178, 0.01)

    def test_savings_grow_as_events_get_rarer(self):
        result = node_optimum_vs_rate(
            rates=(2.0, 0.5),
            thresholds=(1e-9, 0.00178, 100.0),
            horizon=120.0,
        )
        # rarer events -> more idle time avoided -> larger saving vs never-down
        assert result.savings_vs_never[1] > result.savings_vs_never[0]

    def test_rows_shape(self):
        result = node_optimum_vs_rate(
            rates=(1.0,), thresholds=(1e-9, 0.01, 10.0), horizon=60.0
        )
        rows = result.rows()
        assert len(rows) == 1
        assert len(rows[0]) == 4


class TestAdaptiveReplication:
    """ci_target rate sweeps: per-cell adaptive replication control."""

    KW = dict(thresholds=(1e-9, 100.0), horizon=5.0, seed=3)

    def test_adaptive_cells_report_counts_and_flags(self):
        r = node_optimum_vs_rate(
            [1.0], ci_target=0.5, max_replications=4, **self.KW
        )
        assert len(r.cell_replications) == 1
        assert len(r.cell_replications[0]) == 2
        assert all(2 <= n <= 4 for n in r.cell_replications[0])
        assert all(ok in (True, False) for ok in r.cell_converged[0])
        assert r.ci_target == 0.5

    def test_fixed_sweep_reports_no_convergence_fields(self):
        r = node_optimum_vs_rate([1.0], **self.KW)
        assert r.cell_replications is None
        assert r.cell_converged is None
        assert not r.all_converged()
