"""Tests for the sharded network-scenario experiment driver."""

import pytest

from repro.experiments import (
    NETWORK_THRESHOLDS,
    NetworkScenarioConfig,
    format_network_summary,
    make_topology,
    run_network_lifetime_sweep,
    run_network_scenario,
)
from repro.models import GridTopology, LineTopology, StarTopology


class TestMakeTopology:
    def test_kinds(self):
        assert make_topology("line", nodes=4) == LineTopology(4)
        assert make_topology("star", nodes=3) == StarTopology(3)
        assert make_topology("grid", width=4, height=2) == GridTopology(4, 2)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_topology("ring")


class TestConfig:
    def test_defaults(self):
        cfg = NetworkScenarioConfig()
        assert cfg.topology == LineTopology(5)
        assert cfg.thresholds == NETWORK_THRESHOLDS

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkScenarioConfig(horizon=0.0)
        with pytest.raises(ValueError):
            NetworkScenarioConfig(base_rate=0.0)
        with pytest.raises(ValueError):
            NetworkScenarioConfig(thresholds=())


class TestRunScenario:
    def config(self, topology=None):
        return NetworkScenarioConfig(
            topology=topology if topology is not None else LineTopology(3),
            horizon=10.0,
            base_rate=0.5,
            seed=11,
        )

    def test_single_run_summary(self):
        result = run_network_scenario(self.config(), shards=2)
        assert len(result.nodes) == 3
        text = format_network_summary(result)
        assert "network lifetime" in text
        assert "first death: node 1" in text

    def test_threshold_override(self):
        result = run_network_scenario(self.config(), threshold=0.5)
        assert result.power_down_threshold == 0.5

    def test_shards_do_not_change_results(self):
        serial = run_network_scenario(self.config())
        sharded = run_network_scenario(
            self.config(), shards=3, shard_strategy="round-robin"
        )
        assert sharded == serial

    def test_vectorized_engine_refused_with_explanation(self):
        # The refusal must say *why* (each node is a per-node ensemble
        # of one — nothing to batch) and point at the fallback, not
        # just name the bad value.
        with pytest.raises(ValueError, match="ensemble of one") as excinfo:
            run_network_scenario(self.config(), engine="vectorized")
        message = str(excinfo.value)
        assert "engine='vectorized'" in message
        assert "interpreted" in message
        assert "workers" in message
        with pytest.raises(ValueError, match="ensemble of one"):
            run_network_lifetime_sweep(self.config(), engine="vectorized")


class TestRunSweep:
    def test_sweep_shape_and_best(self):
        cfg = NetworkScenarioConfig(
            topology=LineTopology(3),
            horizon=10.0,
            base_rate=0.5,
            seed=11,
            thresholds=(1e-9, 0.01, 100.0),
        )
        sweep = run_network_lifetime_sweep(cfg, shards=2)
        assert sweep.thresholds == (1e-9, 0.01, 100.0)
        assert len(sweep.results) == 3
        assert len(sweep.rows()) == 3
        assert sweep.best() in sweep.results
        assert sweep.best().network_lifetime_days == max(
            sweep.lifetimes_days
        )
        assert sweep.energies_j == [
            r.total_energy_j for r in sweep.results
        ]


class TestAdaptiveReplication:
    """ci_target network runs: replication 0 stays bit-identical and
    shard/worker settings never change adaptive decisions."""

    CFG = NetworkScenarioConfig(
        topology=LineTopology(3),
        horizon=5.0,
        thresholds=(1e-9, 1.0),
        seed=9,
    )

    def test_scenario_replication0_bit_identical(self):
        single = run_network_scenario(self.CFG)
        replicated = run_network_scenario(
            self.CFG, ci_target=0.5, max_replications=4
        )
        assert replicated.result.total_energy_j == single.total_energy_j
        assert [n.energy_j for n in replicated.result.nodes] == [
            n.energy_j for n in single.nodes
        ]
        assert 2 <= replicated.replications <= 4
        assert replicated.energy_ci().batches == replicated.replications

    def test_sweep_adaptive_sharding_invariant(self):
        plain = run_network_lifetime_sweep(
            self.CFG, ci_target=0.5, max_replications=3
        )
        sharded = run_network_lifetime_sweep(
            self.CFG,
            ci_target=0.5,
            max_replications=3,
            shards=2,
            shard_strategy="round-robin",
        )
        assert [
            [r.total_energy_j for r in reps] for reps in plain.replicates
        ] == [[r.total_energy_j for r in reps] for reps in sharded.replicates]
        assert plain.converged == sharded.converged
        assert plain.replication_counts == sharded.replication_counts

    def test_sweep_cap_reports_unconverged_points(self):
        sweep = run_network_lifetime_sweep(
            self.CFG, ci_target=1e-12, max_replications=2
        )
        assert sweep.converged == [False, False]
        assert sweep.replication_counts == [2, 2]
        assert all(ci.batches == 2 for ci in sweep.energy_ci())

    def test_fixed_sweep_has_no_replicates(self):
        sweep = run_network_lifetime_sweep(self.CFG)
        assert sweep.replicates is None
        assert sweep.replication_counts == [1, 1]
        with pytest.raises(ValueError):
            sweep.energy_ci()
