"""Tests for the Section V validation experiment driver."""

import pytest

from repro.experiments import (
    PAPER_TABLE_X,
    ValidationConfig,
    run_simple_node_validation,
)
from repro.experiments.tables import (
    format_delta_table,
    format_optimum_summary,
    format_steady_state_table,
    format_validation_table,
)
from repro.experiments.deltas import delta_table


@pytest.fixture(scope="module")
def result():
    return run_simple_node_validation(
        ValidationConfig(n_events=100, petri_horizon=5000.0, seed=7)
    )


class TestValidationRun:
    def test_percent_difference_close_to_paper(self, result):
        # Paper: 2.95 %. The gap is the calibrated unmodeled overhead,
        # so we land in the same band.
        assert 1.0 < result.percent_difference < 5.0

    def test_petri_underestimates_hardware(self, result):
        # The model misses the overhead draw, so it must predict less.
        assert result.petri_energy_j < result.hardware_energy_j

    def test_energies_positive(self, result):
        assert result.hardware_energy_j > 0
        assert result.petri_energy_j > 0

    def test_table_rows_structure(self, result):
        rows = result.table_rows()
        labels = [r[0] for r in rows]
        assert "Percent difference" in labels
        assert all(len(r) == 3 for r in rows)

    def test_paper_reference_values(self):
        assert PAPER_TABLE_X["percent_difference"] == 2.95
        assert PAPER_TABLE_X["petri_energy_j"] == 0.326519


class TestTableRendering:
    def test_validation_table(self, result):
        text = format_validation_table(result.table_rows())
        assert "Table X" in text
        assert "Percent difference" in text

    def test_delta_table_rendering(self):
        d = delta_table([1.0, 2.0], [1.5, 2.5], [1.1, 2.1])
        text = format_delta_table(d, 0.3, "V")
        assert "Table V" in text
        assert "Δ Sim-Markov" in text
        assert "RMSE" in text

    def test_steady_state_table(self):
        text = format_steady_state_table(
            {"Wait": 0.598, "Receiving": 0.001},
            paper_values={"Wait": 59.8, "Receiving": 0.098},
        )
        assert "Wait" in text
        assert "59.8" in text

    def test_optimum_summary(self):
        text = format_optimum_summary("closed", 0.00177, 2432.0, 0.35, 0.29)
        assert "0.00177" in text
        assert "35%" in text
        assert "29%" in text


class TestAdaptiveReplication:
    """ci_target validation: adaptive protocol re-runs, prefix-stable."""

    CFG = ValidationConfig(
        n_events=10, petri_horizon=500.0, petri_warmup=10.0, seed=7
    )

    def test_adaptive_is_prefix_of_fixed(self):
        fixed = run_simple_node_validation(self.CFG, replications=8)
        adaptive = run_simple_node_validation(
            self.CFG, ci_target=5.0, max_replications=8
        )
        k = adaptive.replications
        assert (
            adaptive.replicate_percent_differences
            == fixed.replicate_percent_differences[:k]
        )
        assert adaptive.converged is True

    def test_cap_hit_reports_unconverged(self):
        adaptive = run_simple_node_validation(
            self.CFG, ci_target=1e-12, max_replications=3
        )
        assert adaptive.converged is False
        assert adaptive.replications == 3

    def test_fixed_run_reports_no_convergence_fields(self):
        fixed = run_simple_node_validation(self.CFG, replications=2)
        assert fixed.converged is None
        assert fixed.ci_target is None
