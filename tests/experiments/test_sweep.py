"""Tests for sweep grids and the sweep runner."""

import pytest

from repro.experiments import (
    FIG4_TO_9_THRESHOLDS,
    FIG14_15_THRESHOLDS,
    linear_thresholds,
    run_sweep,
)


class TestGrids:
    def test_fig4_grid_matches_paper_axis(self):
        assert FIG4_TO_9_THRESHOLDS[0] == 0.001
        assert FIG4_TO_9_THRESHOLDS[-1] == 1.0
        assert len(FIG4_TO_9_THRESHOLDS) == 11

    def test_fig14_grid_contains_the_optimum_cluster(self):
        for v in (0.0017, 0.00176, 0.00177, 0.00178, 0.0019):
            assert v in FIG14_15_THRESHOLDS
        assert FIG14_15_THRESHOLDS == tuple(sorted(FIG14_15_THRESHOLDS))

    def test_linear_thresholds(self):
        ts = linear_thresholds(0.1, 1.0, 10)
        assert len(ts) == 10
        assert ts[0] == pytest.approx(0.1)
        assert ts[-1] == pytest.approx(1.0)

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            linear_thresholds(1.0, 0.5)
        with pytest.raises(ValueError):
            linear_thresholds(0.1, 1.0, 1)


class TestRunSweep:
    def test_preserves_order_and_values(self):
        points = run_sweep([0.1, 0.2], lambda t: t * 10)
        assert [p.threshold for p in points] == [0.1, 0.2]
        assert [p.value for p in points] == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_failure_names_threshold(self):
        def boom(t):
            if t > 0.15:
                raise RuntimeError("inner")
            return t

        with pytest.raises(RuntimeError, match="0.2"):
            run_sweep([0.1, 0.2], boom)
