"""Tests for the Figs. 14/15 node-energy sweep driver (scaled down)."""

import pytest

from repro.experiments import NodeSweepConfig, run_node_energy_sweep

SHORT_GRID = (1e-9, 0.0018, 0.01, 1.0, 50.0)


def short_config(workload="closed"):
    return NodeSweepConfig(
        workload=workload, horizon=150.0, thresholds=SHORT_GRID, seed=5
    )


class TestDriver:
    def test_result_shape(self):
        r = run_node_energy_sweep(short_config())
        assert r.thresholds == SHORT_GRID
        assert len(r.results) == len(SHORT_GRID)
        assert len(r.breakdowns) == len(SHORT_GRID)
        assert len(r.total_energy_j) == len(SHORT_GRID)

    def test_optimum_detection(self):
        r = run_node_energy_sweep(short_config())
        t_opt, e_opt = r.optimum()
        assert t_opt in SHORT_GRID
        assert e_opt == min(r.total_energy_j)

    def test_extreme_accessors(self):
        r = run_node_energy_sweep(short_config())
        assert r.immediate_powerdown_energy() == r.total_energy_j[0]
        assert r.never_powerdown_energy() == r.total_energy_j[-1]

    def test_savings_fractions_in_range(self):
        r = run_node_energy_sweep(short_config())
        assert 0.0 <= r.savings_vs_immediate() < 1.0
        assert 0.0 <= r.savings_vs_never() < 1.0

    def test_series_accessor(self):
        r = run_node_energy_sweep(short_config())
        wake = r.series("cpu_wakeup")
        assert len(wake) == len(SHORT_GRID)
        # wake-up energy shrinks as the threshold grows
        assert wake[0] > wake[-1]

    def test_invalid_workload(self):
        with pytest.raises(ValueError):
            NodeSweepConfig(workload="bogus")


class TestScaledPaperShape:
    def test_closed_optimum_at_radio_phase_boundary(self):
        r = run_node_energy_sweep(short_config("closed"))
        t_opt, _ = r.optimum()
        # the interior grid points (0.0018 or 0.01) must win
        assert t_opt in (0.0018, 0.01)

    def test_open_model_same_ushape(self):
        r = run_node_energy_sweep(short_config("open"))
        t_opt, _ = r.optimum()
        assert t_opt in (0.0018, 0.01)
        assert r.savings_vs_immediate() > 0.1


class TestAdaptiveReplication:
    """ci_target sweeps: reproducible prefixes of the fixed-count run."""

    CFG = NodeSweepConfig(
        workload="closed", horizon=5.0, thresholds=(1e-9, 0.01), seed=5
    )

    def test_adaptive_is_prefix_of_fixed(self):
        fixed = run_node_energy_sweep(self.CFG, replications=6)
        adaptive = run_node_energy_sweep(
            self.CFG, ci_target=0.3, max_replications=6
        )
        for fixed_reps, adaptive_reps in zip(
            fixed.replicates, adaptive.replicates
        ):
            k = len(adaptive_reps)
            assert [r.total_energy_j for r in adaptive_reps] == [
                r.total_energy_j for r in fixed_reps[:k]
            ]
        assert adaptive.ci_target == 0.3
        assert len(adaptive.converged) == 2
        assert all(2 <= n <= 6 for n in adaptive.replication_counts)

    def test_replication0_series_unchanged(self):
        single = run_node_energy_sweep(self.CFG)
        adaptive = run_node_energy_sweep(
            self.CFG, ci_target=0.3, max_replications=4
        )
        assert [r.total_energy_j for r in adaptive.results] == [
            r.total_energy_j for r in single.results
        ]

    def test_fixed_sweep_reports_no_convergence_fields(self):
        fixed = run_node_energy_sweep(self.CFG, replications=2)
        assert fixed.converged is None
        assert fixed.ci_target is None
        assert fixed.replication_counts == [2, 2]
