"""Tests for Δ-energy statistics."""

import numpy as np
import pytest

from repro.experiments import delta_stats, delta_table


class TestDeltaStats:
    def test_identical_series_zero(self):
        s = delta_stats([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert s.avg == 0.0
        assert s.variance == 0.0
        assert s.std_dev == 0.0
        assert s.rmse == 0.0
        assert s.n == 3

    def test_constant_offset(self):
        s = delta_stats([1.0, 2.0, 3.0], [3.0, 4.0, 5.0])
        assert s.avg == pytest.approx(2.0)
        assert s.variance == pytest.approx(0.0)
        assert s.rmse == pytest.approx(2.0)

    def test_sign_symmetric(self):
        a = [1.0, 5.0, 2.0]
        b = [2.0, 3.0, 4.0]
        assert delta_stats(a, b).avg == delta_stats(b, a).avg
        assert delta_stats(a, b).rmse == delta_stats(b, a).rmse

    def test_rmse_geq_avg(self):
        rng = np.random.default_rng(0)
        a = rng.random(20)
        b = rng.random(20)
        s = delta_stats(a, b)
        assert s.rmse >= s.avg - 1e-12

    def test_known_values(self):
        s = delta_stats([0.0, 0.0], [1.0, 3.0])
        assert s.avg == pytest.approx(2.0)
        assert s.variance == pytest.approx(1.0)
        assert s.std_dev == pytest.approx(1.0)
        assert s.rmse == pytest.approx(np.sqrt(5.0))

    def test_as_row_order(self):
        s = delta_stats([0.0], [2.0])
        assert s.as_row() == (s.avg, s.variance, s.std_dev, s.rmse)

    def test_validation(self):
        with pytest.raises(ValueError):
            delta_stats([], [])
        with pytest.raises(ValueError):
            delta_stats([1.0], [1.0, 2.0])


class TestDeltaTable:
    def test_three_columns(self):
        t = delta_table([1.0, 2.0], [1.5, 2.5], [1.1, 2.1])
        assert set(t) == {"sim_markov", "sim_petri", "markov_petri"}
        assert t["sim_markov"].avg == pytest.approx(0.5)
        assert t["sim_petri"].avg == pytest.approx(0.1)
        assert t["markov_petri"].avg == pytest.approx(0.4)
