"""Unit tests for the DES kernel."""

import pytest

from repro.des import Scheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        s = Scheduler()
        log = []
        s.schedule(3.0, lambda: log.append("c"))
        s.schedule(1.0, lambda: log.append("a"))
        s.schedule(2.0, lambda: log.append("b"))
        s.run_until(10.0)
        assert log == ["a", "b", "c"]
        assert s.now == 10.0

    def test_ties_break_by_schedule_order(self):
        s = Scheduler()
        log = []
        s.schedule(1.0, lambda: log.append("first"))
        s.schedule(1.0, lambda: log.append("second"))
        s.run_until(2.0)
        assert log == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        s = Scheduler()
        s.schedule(1.0, lambda: None)
        s.run_until(5.0)
        with pytest.raises(ValueError):
            s.schedule_at(3.0, lambda: None)

    def test_cancellation(self):
        s = Scheduler()
        log = []
        handle = s.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        s.run_until(5.0)
        assert log == []

    def test_cancel_after_fire_is_noop(self):
        s = Scheduler()
        log = []
        handle = s.schedule(1.0, lambda: log.append("x"))
        s.run_until(2.0)
        handle.cancel()
        assert log == ["x"]

    def test_events_can_schedule_events(self):
        s = Scheduler()
        log = []

        def chain():
            log.append(s.now)
            if s.now < 3.0:
                s.schedule(1.0, chain)

        s.schedule(1.0, chain)
        s.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]

    def test_horizon_leaves_future_events_queued(self):
        s = Scheduler()
        log = []
        s.schedule(5.0, lambda: log.append("later"))
        s.run_until(2.0)
        assert log == []
        s.run_until(6.0)
        assert log == ["later"]

    def test_run_until_backwards_rejected(self):
        s = Scheduler()
        s.run_until(5.0)
        with pytest.raises(ValueError):
            s.run_until(3.0)

    def test_event_due_exactly_at_horizon_runs(self):
        s = Scheduler()
        log = []
        s.schedule(2.0, lambda: log.append("edge"))
        s.run_until(2.0)
        assert log == ["edge"]

    def test_step_and_counters(self):
        s = Scheduler()
        s.schedule(1.0, lambda: None)
        s.schedule(2.0, lambda: None)
        assert s.pending() == 2
        assert s.step()
        assert s.events_fired == 1
        assert s.step()
        assert not s.step()

    def test_run_events_budget(self):
        s = Scheduler()
        for i in range(5):
            s.schedule(float(i + 1), lambda: None)
        assert s.run_events(3) == 3
        assert s.pending() == 2

    def test_peek(self):
        s = Scheduler()
        assert s.peek() is None
        h = s.schedule(4.0, lambda: None)
        assert s.peek() == 4.0
        h.cancel()
        assert s.peek() is None
