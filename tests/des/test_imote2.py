"""Behavioural tests for the IMote2 hardware-substitute simulator."""

import pytest

from repro.des import (
    DEFAULT_OVERHEAD_MW,
    IMote2HardwareSimulator,
    IMote2States,
)


class TestConstruction:
    def test_defaults_valid(self):
        hw = IMote2HardwareSimulator(seed=1)
        assert hw.overhead_mw == DEFAULT_OVERHEAD_MW

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IMote2HardwareSimulator(mean_event_gap=0.0)
        with pytest.raises(ValueError):
            IMote2HardwareSimulator(receive_s=-1.0)
        with pytest.raises(ValueError):
            IMote2HardwareSimulator(noise_rel=-0.1)

    def test_power_table_must_cover_states(self):
        with pytest.raises(ValueError):
            IMote2HardwareSimulator(power_mw={"wait": 1.0})


class TestRun:
    def test_event_count_and_duration(self):
        hw = IMote2HardwareSimulator(seed=3)
        r = hw.run_events(50)
        assert r.events == 50
        # each cycle >= 1s separation + stage times
        assert r.duration_s >= 50 * (1.0 + 0.00597 + 1.0274 + 0.0059)

    def test_mean_power_near_expected(self):
        hw = IMote2HardwareSimulator(seed=3)
        r = hw.run_events(400)
        assert r.mean_power_mw == pytest.approx(
            hw.expected_mean_power_mw(), rel=0.02
        )

    def test_energy_consistency(self):
        hw = IMote2HardwareSimulator(seed=3)
        r = hw.run_events(20)
        assert r.energy_j == pytest.approx(
            r.mean_power_mw * r.duration_s / 1000.0
        )
        assert r.energy_mj == pytest.approx(r.energy_j * 1000.0)

    def test_dwell_ledger_populated(self):
        r = IMote2HardwareSimulator(seed=3).run_events(10)
        for state in IMote2States.ALL:
            assert r.dwell.get(state, 0.0) > 0.0

    def test_reproducible(self):
        a = IMote2HardwareSimulator(seed=9).run_events(30)
        b = IMote2HardwareSimulator(seed=9).run_events(30)
        assert a.energy_mj == pytest.approx(b.energy_mj)

    def test_invalid_event_count(self):
        with pytest.raises(ValueError):
            IMote2HardwareSimulator(seed=1).run_events(0)


class TestCalibration:
    def test_overhead_shifts_power_up(self):
        base = IMote2HardwareSimulator(seed=5, overhead_mw=0.0).run_events(200)
        shifted = IMote2HardwareSimulator(seed=5, overhead_mw=0.1).run_events(200)
        assert shifted.mean_power_mw == pytest.approx(
            base.mean_power_mw + 0.1, abs=1e-9
        )

    def test_default_overhead_matches_paper_mean_power(self):
        # The paper's Table X measured 1.261 mW; our calibrated hardware
        # sim must land within a few percent.
        r = IMote2HardwareSimulator(seed=11).run_events(400)
        assert r.mean_power_mw == pytest.approx(1.261, rel=0.02)

    def test_noise_perturbs_but_preserves_mean(self):
        noisy = IMote2HardwareSimulator(seed=5, noise_rel=0.05).run_events(500)
        clean = IMote2HardwareSimulator(seed=5, noise_rel=0.0).run_events(500)
        assert noisy.mean_power_mw == pytest.approx(clean.mean_power_mw, rel=0.02)
        assert noisy.energy_mj != clean.energy_mj

    def test_expected_cycle_time(self):
        hw = IMote2HardwareSimulator()
        assert hw.expected_cycle_time() == pytest.approx(
            3.0 + 1.0 + 0.00597 + 1.0274 + 0.0059
        )
