"""Behavioural tests for the ground-truth CPU simulator."""

import pytest

from repro.des import CPUPowerStateSimulator, CPUStates
from repro.markov import SupplementaryVariableCPUModel


def run(T, D, horizon=30_000.0, seed=7, lam=1.0, mu=10.0, warmup=100.0):
    sim = CPUPowerStateSimulator(lam, mu, T, D, seed=seed, warmup=warmup)
    return sim.run(horizon)


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CPUPowerStateSimulator(0.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            CPUPowerStateSimulator(1.0, 10.0, -0.1, 0.1)
        with pytest.raises(ValueError):
            CPUPowerStateSimulator(1.0, 10.0, 0.1, 0.1, initial_state="weird")
        with pytest.raises(ValueError):
            CPUPowerStateSimulator(1.0, 10.0, 0.1, 0.1).run(0.0)


class TestBehaviour:
    def test_fractions_sum_to_one(self):
        r = run(0.1, 0.3)
        assert sum(r.fractions.values()) == pytest.approx(1.0)

    def test_workload_conservation(self):
        r = run(0.1, 0.3)
        assert r.jobs_arrived >= r.jobs_served
        assert r.jobs_arrived - r.jobs_served < 50  # queue is stable

    def test_zero_threshold_skips_idle(self):
        r = run(0.0, 0.001)
        assert r.fraction(CPUStates.IDLE) == pytest.approx(0.0, abs=1e-9)

    def test_huge_threshold_never_sleeps(self):
        r = run(10_000.0, 0.3)
        assert r.fraction(CPUStates.STANDBY) == pytest.approx(0.0, abs=1e-6)
        assert r.wakeups <= 1

    def test_active_fraction_tracks_utilisation(self):
        # rho = 0.1 regardless of power management (service conservation)
        for T, D in ((0.001, 0.001), (0.5, 0.3), (0.9, 1.0)):
            r = run(T, D)
            assert r.fraction(CPUStates.ACTIVE) == pytest.approx(0.1, abs=0.02)

    def test_wakeups_decrease_with_threshold(self):
        wakes = [run(T, 0.001).wakeups for T in (0.001, 0.5, 2.0)]
        assert wakes[0] > wakes[1] > wakes[2]

    def test_powerup_fraction_grows_with_delay(self):
        r_small = run(0.01, 0.001)
        r_big = run(0.01, 10.0)
        assert r_big.fraction(CPUStates.POWERUP) > r_small.fraction(CPUStates.POWERUP)
        # At D = 10 the CPU spends most time waking (Fig. 6's regime).
        assert r_big.fraction(CPUStates.POWERUP) > 0.5

    def test_reproducibility(self):
        a = run(0.1, 0.3, seed=5)
        b = run(0.1, 0.3, seed=5)
        assert a.fractions == b.fractions
        assert a.jobs_arrived == b.jobs_arrived

    def test_initial_state_idle(self):
        sim = CPUPowerStateSimulator(
            1.0, 10.0, 5.0, 0.3, initial_state=CPUStates.IDLE, seed=1
        )
        r = sim.run(100.0)
        assert r.fraction(CPUStates.IDLE) > 0


class TestAgainstMarkovModel:
    """Cross-validation: for small D the Markov equations are accurate."""

    @pytest.mark.parametrize("T", [0.05, 0.2, 0.8])
    def test_small_delay_agreement(self, T):
        D = 0.001
        r = run(T, D, horizon=60_000.0)
        ss = SupplementaryVariableCPUModel(1.0, 10.0, T, D).steady_state()
        assert r.fraction(CPUStates.STANDBY) == pytest.approx(ss.standby, abs=0.02)
        assert r.fraction(CPUStates.IDLE) == pytest.approx(ss.idle, abs=0.02)
        assert r.fraction(CPUStates.ACTIVE) == pytest.approx(ss.active, abs=0.02)

    def test_large_delay_divergence(self):
        # The paper's Fig. 6 claim: Markov fails at D = 10 s.
        D, T = 10.0, 0.5
        r = run(T, D, horizon=60_000.0)
        ss = SupplementaryVariableCPUModel(1.0, 10.0, T, D).steady_state()
        assert abs(r.fraction(CPUStates.POWERUP) - ss.powerup) > 0.3
