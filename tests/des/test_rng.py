"""Unit tests for named RNG streams."""

import numpy as np

from repro.des import RngStreams


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(42)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_families(self):
        a = RngStreams(42).get("arrivals").random(5)
        b = RngStreams(42).get("arrivals").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(42)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_values_independent_of_creation_order(self):
        s1 = RngStreams(42)
        s1.get("x")
        v1 = s1.get("y").random(3)
        s2 = RngStreams(42)
        v2 = s2.get("y").random(3)  # no "x" created first
        assert np.allclose(v1, v2)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("s").random(5)
        b = RngStreams(2).get("s").random(5)
        assert not np.allclose(a, b)

    def test_spawn_gives_independent_family(self):
        parent = RngStreams(42)
        child1 = parent.spawn()
        child2 = parent.spawn()
        v0 = parent.get("s").random(3)
        v1 = child1.get("s").random(3)
        v2 = child2.get("s").random(3)
        assert not np.allclose(v0, v1)
        assert not np.allclose(v1, v2)

    def test_names_listing(self):
        streams = RngStreams()
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]

    def test_stable_key_is_deterministic(self):
        assert RngStreams._stable_key("cpu.arrivals") == RngStreams._stable_key(
            "cpu.arrivals"
        )
        assert RngStreams._stable_key("a") != RngStreams._stable_key("b")
