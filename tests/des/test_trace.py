"""Unit tests for state-dwell ledgers."""

import pytest

from repro.des import StateDwellLedger


class TestStateDwellLedger:
    def test_basic_dwell(self):
        led = StateDwellLedger("a")
        led.transition(2.0, "b")
        led.transition(5.0, "a")
        led.close(10.0)
        assert led.time_in("a") == pytest.approx(2.0 + 5.0)
        assert led.time_in("b") == pytest.approx(3.0)
        assert led.total_time() == pytest.approx(10.0)

    def test_fractions_sum_to_one(self):
        led = StateDwellLedger("a")
        led.transition(1.0, "b")
        led.transition(4.0, "c")
        led.close(8.0)
        fracs = led.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["c"] == pytest.approx(0.5)

    def test_self_transition_accumulates(self):
        led = StateDwellLedger("a")
        led.transition(1.0, "a")
        led.transition(2.0, "a")
        led.close(3.0)
        assert led.time_in("a") == pytest.approx(3.0)
        assert led.visit_count("a") == 1  # no re-entry

    def test_visit_counting(self):
        led = StateDwellLedger("a")
        led.transition(1.0, "b")
        led.transition(2.0, "a")
        led.close(3.0)
        assert led.visit_count("a") == 2
        assert led.visit_count("b") == 1
        assert led.visit_count("zzz") == 0

    def test_warmup_discards_early_time(self):
        led = StateDwellLedger("a", warmup=5.0)
        led.transition(3.0, "b")  # a over [0,3) discarded entirely
        led.transition(7.0, "a")  # b over [3,7): only [5,7) counts
        led.close(10.0)
        assert led.time_in("a") == pytest.approx(3.0)
        assert led.time_in("b") == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        led = StateDwellLedger("a")
        led.transition(5.0, "b")
        with pytest.raises(ValueError):
            led.transition(4.0, "a")

    def test_closed_ledger_rejects_updates(self):
        led = StateDwellLedger("a")
        led.close(1.0)
        with pytest.raises(RuntimeError):
            led.transition(2.0, "b")

    def test_double_close_is_noop(self):
        led = StateDwellLedger("a")
        led.close(1.0)
        led.close(5.0)
        assert led.total_time() == pytest.approx(1.0)

    def test_history_recording(self):
        led = StateDwellLedger("a", keep_history=True)
        led.transition(1.0, "b")
        led.close(3.0)
        hist = led.history()
        assert len(hist) == 2
        assert hist[0].state == "a"
        assert hist[0].duration == pytest.approx(1.0)
        assert hist[1].state == "b"
        assert hist[1].duration == pytest.approx(2.0)

    def test_history_off_by_default(self):
        led = StateDwellLedger("a")
        led.close(1.0)
        assert led.history() == []

    def test_empty_fractions(self):
        assert StateDwellLedger("a").fractions() == {}
