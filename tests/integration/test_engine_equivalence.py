"""Vectorized-vs-interpreted engine equivalence (the engine contract).

``repro.core.fast`` promises bit-identity with the interpreted engine
for nets inside its compilable subset.  This suite is that promise's
enforcement:

* :data:`EQUIVALENCE_MODE` declares the shipped equivalence mode for
  every paper model — asserted explicitly per model, never silently
  assumed.  All four models ship ``"bit-identical"``; if an engine
  change ever downgrades one to statistical equivalence, the table (and
  the matching test tolerance) must change with it, visibly.
* A Hypothesis property test pits both engines against the
  ``test_random_nets`` fuzzer topologies at identical seeds.
* An adaptive-controller run asserts converged flags and replication
  counts agree across engines (the controller only sees values, and the
  values are identical).
* The compile-time fences: everything outside the subset must raise
  :class:`~repro.core.errors.UnsupportedNetError`, not silently
  diverge.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    INFINITE_SERVERS,
    Deterministic,
    Exponential,
    MemoryPolicy,
    PetriNet,
    Simulation,
    simulate,
)
from repro.core.errors import UnsupportedNetError
from repro.core.fast import VectorPredicate, compile_net, run_ensemble
from repro.core.guards import FunctionGuard
from repro.core.marking import Token
from repro.experiments.sensitivity import node_optimum_vs_rate
from repro.models.cpu_petri import CPUPetriModel
from repro.models.simple_node import SimpleNodeModel
from repro.models.wsn_node import NodeParameters, WSNNodeModel
from tests.integration.test_random_nets import random_closed_net

#: The shipped equivalence mode of every paper model, per the ISSUE 6
#: correctness contract.  ``"bit-identical"`` means the vectorized
#: result objects compare *equal* to the interpreted ones — same RNG
#: draw order, same floating-point accumulation sequence — and the
#: tests below enforce exactly that.  A model that ever needs the
#: weaker ``"statistical"`` mode must change this table and its test
#: together (tolerance comparison against the Tables 8-10 targets).
EQUIVALENCE_MODE = {
    "wsn_closed": "bit-identical",
    "wsn_open": "bit-identical",
    "cpu_petri": "bit-identical",
    "simple_node": "bit-identical",
}

SEEDS = (2010, 7, 123)


def _wsn_model(workload: str) -> WSNNodeModel:
    return WSNNodeModel(
        NodeParameters(power_down_threshold=0.00178), workload
    )


MODEL_RUNS = {
    "wsn_closed": (lambda: _wsn_model("closed"), 60.0, 0.0),
    "wsn_open": (lambda: _wsn_model("open"), 60.0, 10.0),
    "cpu_petri": (lambda: CPUPetriModel(1.0, 10.0, 0.1, 0.3), 200.0, 50.0),
    "simple_node": (lambda: SimpleNodeModel(), 300.0, 100.0),
}


class TestShippedModelEquivalence:
    """Every paper model's declared equivalence mode, enforced."""

    def test_every_shipped_model_declares_a_mode(self):
        assert set(EQUIVALENCE_MODE) == set(MODEL_RUNS)

    @pytest.mark.parametrize("name", sorted(MODEL_RUNS))
    def test_model_matches_declared_mode(self, name):
        mode = EQUIVALENCE_MODE[name]
        # All shipped models are inside the compilable subset, so the
        # strong mode is mandatory; a "statistical" entry here without
        # a matching tolerance test is a contract violation.
        assert mode == "bit-identical", (
            f"{name} declares {mode!r}: add a tolerance-based "
            "comparison against the Tables 8-10 targets for it"
        )
        build, horizon, warmup = MODEL_RUNS[name]
        interpreted = [
            build().simulate(horizon, seed=s, warmup=warmup) for s in SEEDS
        ]
        vectorized = build().simulate_ensemble(
            horizon, SEEDS, warmup=warmup
        )
        # Dataclass equality: every field, bit for bit.
        assert vectorized == interpreted

    def test_wsn_energy_is_bit_identical_not_just_close(self):
        # Spot-check the headline metric with exact float equality —
        # guards against a refactor quietly relaxing == to approx.
        model = _wsn_model("closed")
        [vec] = model.simulate_ensemble(60.0, [2010])
        ref = model.simulate(60.0, seed=2010)
        assert vec.total_energy_j == ref.total_energy_j
        assert vec.cpu_fractions == ref.cpu_fractions
        assert vec.breakdown == ref.breakdown


class TestFuzzerNetEquivalence:
    """Property test: both engines agree on random topologies."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_closed_net())
    def test_vectorized_matches_interpreted(self, net_and_seed):
        net, seed = net_and_seed
        # The fuzzer nets are plain exponential SPNs — squarely inside
        # the compilable subset, so the declared mode is bit-identity
        # (tolerance 0), strictly stronger than the statistical
        # tolerance the contract would allow.
        seeds = [seed, seed + 1]
        ensemble = run_ensemble(net, 300.0, seeds, warmup=20.0)
        for s, vec in zip(seeds, ensemble):
            ref = simulate(net, horizon=300.0, seed=s, warmup=20.0)
            assert vec.firings == ref.firings
            assert vec.final_marking_counts == ref.final_marking_counts
            assert vec.end_time == ref.end_time
            for place in net.place_names:
                assert vec.occupancy(place) == ref.occupancy(place), place
                assert vec.mean_tokens(place) == ref.mean_tokens(place), place
            for t in net.transition_names:
                assert vec.stats.firing_count(t) == ref.stats.firing_count(t)


class TestAdaptiveControllerAgreement:
    """Converged flags and replication counts agree across engines."""

    def test_converged_flags_and_counts_agree(self):
        kwargs = dict(
            rates=(1.0,),
            thresholds=(0.00178, 10.0),
            horizon=40.0,
            seed=2010,
            ci_target=0.3,
            max_replications=8,
            min_replications=2,
        )
        interp = node_optimum_vs_rate(engine="interpreted", **kwargs)
        vec = node_optimum_vs_rate(engine="vectorized", **kwargs)
        assert vec.cell_converged == interp.cell_converged
        assert vec.cell_replications == interp.cell_replications
        assert vec.optima == interp.optima
        assert vec.optimum_energies_j == interp.optimum_energies_j
        assert vec.savings_vs_never == interp.savings_vs_never


class TestUnsupportedNetFences:
    """Outside the subset: refuse at compile time, never diverge."""

    @staticmethod
    def _base():
        net = PetriNet("fence")
        net.add_place("P", initial_tokens=1)
        net.add_place("Q")
        return net

    def _expect_unsupported(self, net, fragment):
        with pytest.raises(UnsupportedNetError) as err:
            compile_net(net)
        assert fragment in str(err.value)

    def test_function_guard(self):
        net = self._base()
        net.add_transition(
            "t", Deterministic(1.0), inputs=["P"], outputs=["Q"],
            guard=FunctionGuard(lambda view: True, "always"),
        )
        self._expect_unsupported(net, "guard")

    def test_reset_arcs(self):
        net = self._base()
        net.add_transition(
            "t", Deterministic(1.0), inputs=["P"], outputs=["Q"], resets=["Q"]
        )
        self._expect_unsupported(net, "reset arcs")

    def test_opaque_token_filter(self):
        net = self._base()
        net.add_transition(
            "t",
            Deterministic(1.0),
            inputs=[("P", 1, lambda token: token.color == 1)],
            outputs=["Q"],
        )
        self._expect_unsupported(net, "token filter")

    def test_age_memory(self):
        net = self._base()
        net.add_transition(
            "t", Exponential(1.0), inputs=["P"], outputs=["Q"],
            memory=MemoryPolicy.AGE,
        )
        self._expect_unsupported(net, "memory")

    def test_infinite_servers(self):
        net = self._base()
        net.add_transition(
            "t", Exponential(1.0), inputs=["P"], outputs=["Q"],
            servers=INFINITE_SERVERS,
        )
        self._expect_unsupported(net, "infinite servers")

    def test_opaque_output_producer(self):
        net = self._base()
        net.add_transition(
            "t", Deterministic(1.0), inputs=["P"],
            outputs=[("Q", 1, lambda ctx: Token(1))],
        )
        self._expect_unsupported(net, "producer")

    def test_error_names_the_offending_element(self):
        net = self._base()
        net.add_transition(
            "culprit", Exponential(1.0), inputs=["P"], outputs=["Q"],
            servers=INFINITE_SERVERS,
        )
        with pytest.raises(UnsupportedNetError) as err:
            compile_net(net)
        assert "culprit" in str(err.value)


class TestInitialMarkingOverrides:
    """Colour handling of ``initial_marking`` overrides."""

    def test_alien_colour_in_observable_place_raises(self):
        # WSN "Buffer" feeds filtered arcs, so its colours are
        # observable and the compiled pool is closed: a colour the
        # compiler never saw must be rejected, not guessed at.
        model = _wsn_model("closed")
        with pytest.raises(UnsupportedNetError) as err:
            run_ensemble(
                model.build(), 10.0, [1],
                initial_marking={"Buffer": [Token(99)]},
            )
        assert "colour" in str(err.value)

    def test_nonobservable_colours_collapse_soundly(self):
        # CPU_Buffer never reaches a filtered arc, so its colours are
        # projected away at compile time; an exotic override colour
        # collapses the same way and the run still matches the
        # interpreted engine bit for bit.
        overrides = {"CPU_Buffer": [Token("red")]}
        net = CPUPetriModel(1.0, 10.0, 0.1, 0.3).build()
        [vec] = run_ensemble(net, 50.0, [1], initial_marking=overrides)
        ref = Simulation(
            CPUPetriModel(1.0, 10.0, 0.1, 0.3).build(),
            seed=1,
            initial_marking=overrides,
        ).run(50.0)
        assert vec.final_marking_counts == ref.final_marking_counts
        assert vec.firings == ref.firings

    def test_count_overrides_match_interpreted(self):
        overrides = {"CPU_Buffer": 2}
        net = CPUPetriModel(1.0, 10.0, 0.1, 0.3).build()
        [vec] = run_ensemble(net, 50.0, [1], initial_marking=overrides)
        ref = Simulation(
            CPUPetriModel(1.0, 10.0, 0.1, 0.3).build(),
            seed=1,
            initial_marking=overrides,
        ).run(50.0)
        assert vec.final_marking_counts == ref.final_marking_counts
        assert vec.firings == ref.firings


class TestVectorPredicates:
    """Predicate tracking matches the interpreted collector exactly."""

    def test_predicate_occupancy_is_bit_identical(self):
        model = _wsn_model("closed")
        net = model.build()
        [vec] = run_ensemble(
            net,
            60.0,
            [2010],
            predicates={"cpu_active": VectorPredicate(model._cpu_active)},
        )
        sim = Simulation(model.build(), seed=2010)
        sim.add_predicate("cpu_active", model._cpu_active)
        ref = sim.run(60.0)
        assert vec.stats.predicate_probability(
            "cpu_active"
        ) == ref.stats.predicate_probability("cpu_active")
