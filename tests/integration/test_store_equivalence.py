"""Warm cache runs are byte-identical to cold runs, everywhere.

The result store's whole value rests on one claim: serving a result
from disk is indistinguishable from recomputing it.  This suite pins
that claim across the full execution matrix — every shipped model
(closed/open WSN node, CPU Petri comparison, Section V validation),
both engines, and all three backend families (in-process serial,
process pool, socket workers) — by fingerprinting each run at
*per-replication* granularity and comparing against one interpreted
serial store-less baseline per model.

Comparing per store entry (one pickle per replication result) rather
than pickling whole aggregates is deliberate: pickle memoizes shared
sub-objects, so two aggregates of bit-identical elements can still
serialize differently depending on whether the elements were computed
in-process (shared interned strings) or unpickled independently from
the cache.  Per-entry pickles are stable across that round-trip.

Also covered here: mid-run corruption recovery at driver level, the
adaptive max_replications top-up reusing the cached prefix, and
cross-engine cache sharing.
"""

import pickle
import threading

import pytest

from repro.experiments.figures import CPUComparisonConfig, run_cpu_comparison
from repro.experiments.node_energy import NodeSweepConfig, run_node_energy_sweep
from repro.experiments.validation import ValidationConfig, run_simple_node_validation
from repro.runtime.remote import SocketBackend, serve_worker
from repro.runtime.store import ResultStore, StoreWarning

REPLICATIONS = 2


def _wsn_config(workload):
    return NodeSweepConfig(
        workload=workload,
        horizon=2.0,
        thresholds=(0.001, 0.00178),
        seed=2010,
    )


def _run_wsn_closed(engine, backend, workers, store):
    return run_node_energy_sweep(
        _wsn_config("closed"),
        workers=workers,
        replications=REPLICATIONS,
        backend=backend,
        engine=engine,
        store=store,
    )


def _run_wsn_open(engine, backend, workers, store):
    return run_node_energy_sweep(
        _wsn_config("open"),
        workers=workers,
        replications=REPLICATIONS,
        backend=backend,
        engine=engine,
        store=store,
    )


def _run_cpu_petri(engine, backend, workers, store):
    return run_cpu_comparison(
        0.1,
        CPUComparisonConfig(horizon=30.0, thresholds=(0.1, 1.0), seed=2010),
        workers=workers,
        replications=REPLICATIONS,
        backend=backend,
        engine=engine,
        store=store,
    )


def _run_simple_node(engine, backend, workers, store):
    return run_simple_node_validation(
        ValidationConfig(n_events=5, petri_horizon=60.0, petri_warmup=0.0),
        workers=workers,
        replications=REPLICATIONS,
        backend=backend,
        engine=engine,
        store=store,
    )


def _fingerprint_sweep(result):
    """One pickle per (point, replication) node result."""
    return [
        pickle.dumps(r, 5) for point in result.replicates for r in point
    ]


def _fingerprint_cpu(result):
    """One pickle per estimator series (pure floats — memo-safe)."""
    out = [pickle.dumps(result.thresholds, 5)]
    for estimator in sorted(result.energy_j):
        out.append(
            pickle.dumps((estimator, tuple(result.energy_j[estimator])), 5)
        )
    for estimator in sorted(result.fractions):
        for state in sorted(result.fractions[estimator]):
            out.append(
                pickle.dumps(
                    (estimator, state, tuple(result.fractions[estimator][state])),
                    5,
                )
            )
    return out


def _fingerprint_validation(result):
    """Replication 0's (hardware, petri, energy) entry + all headlines."""
    return [
        pickle.dumps((result.hardware, result.petri, result.petri_energy_j), 5),
        pickle.dumps(tuple(result.replicate_percent_differences), 5),
    ]


MODELS = {
    "wsn_closed": (_run_wsn_closed, _fingerprint_sweep),
    "wsn_open": (_run_wsn_open, _fingerprint_sweep),
    "cpu_petri": (_run_cpu_petri, _fingerprint_cpu),
    "simple_node": (_run_simple_node, _fingerprint_validation),
}
ENGINES = ("interpreted", "vectorized")
BACKENDS = ("serial", "processes", "socket")


@pytest.fixture(scope="module")
def socket_port():
    """One in-process socket worker shared by the whole module."""
    ready = threading.Event()
    ports = []

    def announce(line):
        ports.append(int(line.rsplit(":", 1)[1]))
        ready.set()

    threading.Thread(
        target=serve_worker,
        args=(0,),
        kwargs={"max_sessions": None, "announce": announce},
        daemon=True,
    ).start()
    assert ready.wait(10), "worker never announced its port"
    return ports[0]


def _execution(backend_kind, socket_port):
    """(backend, workers) for one backend family."""
    if backend_kind == "serial":
        return None, 1
    if backend_kind == "processes":
        return None, 2
    return SocketBackend([f"127.0.0.1:{socket_port}"]), 1


@pytest.fixture(scope="module")
def baseline():
    """Lazy per-model fingerprint of the interpreted serial plain run."""
    cache = {}

    def get(model):
        if model not in cache:
            run, fingerprint = MODELS[model]
            cache[model] = fingerprint(run("interpreted", None, 1, None))
        return cache[model]

    return get


class TestWarmEqualsCold:
    """4 models x 2 engines x 3 backends: the acceptance matrix."""

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_matrix(
        self, model, engine, backend_kind, baseline, socket_port, tmp_path
    ):
        run, fingerprint = MODELS[model]
        backend, workers = _execution(backend_kind, socket_port)
        store = ResultStore(tmp_path)

        cold = run(engine, backend, workers, store)
        assert fingerprint(cold) == baseline(model), (
            "a cold store-backed run must match the store-less baseline"
        )
        assert store.hits == 0
        assert store.puts > 0
        cold_misses, puts = store.misses, store.puts

        warm = run(engine, backend, workers, store)
        assert fingerprint(warm) == baseline(model), (
            "a warm run must be byte-identical to the cold one"
        )
        assert store.misses == cold_misses, "warm run must not recompute"
        assert store.hits == puts, "every entry must be served back"


class TestCrossEngineSharing:
    def test_vectorized_reads_interpreted_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        run, fingerprint = MODELS["wsn_closed"]
        cold = run("interpreted", None, 1, store)
        store.hits = store.misses = 0
        warm = run("vectorized", None, 1, store)
        assert store.misses == 0, "engines must share one equivalence class"
        assert fingerprint(warm) == fingerprint(cold)

    def test_interpreted_reads_vectorized_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        run, fingerprint = MODELS["wsn_open"]
        cold = run("vectorized", None, 1, store)
        store.hits = store.misses = 0
        warm = run("interpreted", None, 1, store)
        assert store.misses == 0
        assert fingerprint(warm) == fingerprint(cold)


class TestCorruptionRecoveryMidRun:
    def test_driver_recovers_from_a_corrupted_entry(self, tmp_path):
        run, fingerprint = MODELS["wsn_closed"]
        store = ResultStore(tmp_path)
        cold = run("interpreted", None, 1, store)
        victim = store._entry_files()[0]
        blob = victim.read_bytes()
        victim.write_bytes(blob[:-4])  # truncate the payload
        with pytest.warns(StoreWarning, match="recomputing"):
            warm = run("interpreted", None, 1, store)
        assert fingerprint(warm) == fingerprint(cold)
        assert store.corrupt == 1
        # The recompute healed the entry: a third run is all hits again.
        store.hits = store.misses = 0
        with _no_warnings():
            healed = run("interpreted", None, 1, store)
        assert store.misses == 0
        assert fingerprint(healed) == fingerprint(cold)


class TestAdaptiveTopUp:
    """Raising max_replications serves the cached prefix, computes the delta."""

    @staticmethod
    def _adaptive(max_replications, store):
        # ci_target far below reach: every point runs to max_replications,
        # making the executed counts deterministic.
        return run_node_energy_sweep(
            _wsn_config("closed"),
            ci_target=1e-9,
            min_replications=2,
            max_replications=max_replications,
            store=store,
        )

    def test_top_up_reuses_the_cached_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        short = self._adaptive(2, store)
        store.hits = store.misses = 0

        long = self._adaptive(4, store)
        n_points = len(_wsn_config("closed").thresholds)
        assert store.hits == n_points * 2, "the cached prefix must be served"
        assert store.misses == n_points * 2, "only the delta is computed"
        for short_point, long_point in zip(short.replicates, long.replicates):
            assert [pickle.dumps(r, 5) for r in long_point[:2]] == [
                pickle.dumps(r, 5) for r in short_point
            ]
        uncached = self._adaptive(4, None)
        assert _fingerprint_sweep(long) == _fingerprint_sweep(uncached), (
            "a topped-up run must be bit-identical to an uncached full run"
        )


class _no_warnings:
    """Context manager asserting no StoreWarning is raised inside."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        warnings.simplefilter("always")
        return self

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        bad = [w for w in self._records if issubclass(w.category, StoreWarning)]
        assert not bad, f"unexpected StoreWarning: {[str(w.message) for w in bad]}"
        return False
