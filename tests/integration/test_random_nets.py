"""Property-based cross-validation on randomly generated nets.

Hypothesis generates small random exponential SPNs; the simulation
engine and the exact SPN→CTMC pipeline must agree on place occupancies.
This is the strongest single check of the engine's timed semantics:
any systematic bias in enabling, racing, or statistics collection
would surface as a disagreement on some generated topology.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import spn_to_ctmc
from repro.core import Exponential, PetriNet, simulate
from repro.core.errors import UnboundedNetError
from repro.markov import CTMC


@st.composite
def random_closed_net(draw):
    """A random strongly-token-conserving exponential net.

    ``n_places`` places in a cycle guarantee every transition can fire
    again (token conservation on a ring), plus random chords for
    topology variety.  All transitions are exponential with random
    rates, so the net is a CTMC.
    """
    n_places = draw(st.integers(3, 5))
    n_tokens = draw(st.integers(1, 3))
    n_chords = draw(st.integers(0, 3))
    rates = draw(
        st.lists(
            st.floats(0.2, 5.0, allow_nan=False),
            min_size=n_places + n_chords,
            max_size=n_places + n_chords,
        )
    )
    seed = draw(st.integers(0, 10**6))

    net = PetriNet("random")
    for i in range(n_places):
        net.add_place(f"P{i}", initial_tokens=n_tokens if i == 0 else 0)
    # ring backbone
    for i in range(n_places):
        net.add_transition(
            f"ring{i}",
            Exponential(rates[i]),
            inputs=[f"P{i}"],
            outputs=[f"P{(i + 1) % n_places}"],
        )
    # random chords (still token-conserving: one in, one out)
    rng = np.random.default_rng(seed)
    for j in range(n_chords):
        a = int(rng.integers(n_places))
        b = int(rng.integers(n_places))
        if a == b:
            b = (b + 1) % n_places
        net.add_transition(
            f"chord{j}",
            Exponential(rates[n_places + j]),
            inputs=[f"P{a}"],
            outputs=[f"P{b}"],
        )
    return net, seed


class TestRandomNetAgreement:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_closed_net())
    def test_engine_matches_exact_ctmc(self, net_and_seed):
        net, seed = net_and_seed
        try:
            ctmc = spn_to_ctmc(net, max_states=5000)
        except UnboundedNetError:
            pytest.skip("state space larger than budget")
        pi = CTMC(ctmc.Q).steady_state()
        result = simulate(net, horizon=8000.0, seed=seed, warmup=200.0)
        for place in net.place_names:
            exact = ctmc.place_marginal(pi, place)
            simulated = result.occupancy(place)
            assert simulated == pytest.approx(exact, abs=0.06), place

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_closed_net())
    def test_token_conservation(self, net_and_seed):
        net, seed = net_and_seed
        total0 = net.initial_marking().total_tokens()
        result = simulate(net, horizon=500.0, seed=seed)
        assert sum(result.final_marking_counts.values()) == total0
