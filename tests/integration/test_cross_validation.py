"""Cross-model integration tests.

Three independent implementations of the same stochastic systems must
agree: the Petri-net engine, the DES substrate, the Markov closed
forms, and the exact CTMC solver.  Any disagreement implicates exactly
one layer, which makes these tests the reproduction's strongest
correctness instrument.
"""

import pytest

from repro.analysis import spn_to_ctmc
from repro.core import Erlang, Exponential, PetriNet, simulate
from repro.des import CPUPowerStateSimulator, CPUStates
from repro.markov import (
    CTMC,
    SupplementaryVariableCPUModel,
    mm1_metrics,
)
from repro.models import CPUPetriModel


class TestQueueAgreement:
    """Petri engine vs analytic M/M/1 vs exact CTMC."""

    def test_three_way_mm1k(self):
        lam, mu, K = 1.0, 2.0, 10
        net = PetriNet("mm1k")
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_place("slots", initial_tokens=K)
        net.add_transition(
            "arrive", Exponential(lam), inputs=["src", "slots"], outputs=["src", "q"]
        )
        net.add_transition("serve", Exponential(mu), inputs=["q"], outputs=["slots"])

        # exact CTMC answer
        ctmc = spn_to_ctmc(net)
        pi = CTMC(ctmc.Q).steady_state()
        exact_L = ctmc.expected_tokens(pi, "q")

        # simulated answer (same net!)
        sim = simulate(net, horizon=60_000.0, seed=11, warmup=1000.0)
        assert sim.mean_tokens("q") == pytest.approx(exact_L, rel=0.05)

        # near-M/M/1 sanity (K=10 truncation is mild at rho=0.5)
        assert exact_L == pytest.approx(
            mm1_metrics(lam, mu).mean_number_in_system, rel=0.02
        )

    def test_erlang_approximates_deterministic(self):
        """Erlang-k service approaches the deterministic net as k grows
        (the classical phase-type bridge between CTMC and DSPN)."""
        from repro.core import Deterministic

        def busy_fraction(dist):
            net = PetriNet()
            net.add_place("src", initial_tokens=1)
            net.add_place("q")
            net.add_transition(
                "arrive", Exponential(0.5), inputs=["src"], outputs=["src", "q"]
            )
            net.add_transition("serve", dist, inputs=["q"])
            r = simulate(net, horizon=30_000.0, seed=3, warmup=500.0)
            return r.occupancy("q")

        det = busy_fraction(Deterministic(1.0))
        erl = busy_fraction(Erlang.from_mean(64, 1.0))
        exp = busy_fraction(Exponential(1.0))
        # utilization rho = 0.5 in all cases...
        assert det == pytest.approx(0.5, abs=0.03)
        # ...but queueing differs; Erlang-64 must sit near deterministic
        assert abs(erl - det) < abs(exp - det) + 0.02


class TestCPUThreeWay:
    """The Section IV comparison as an integration test."""

    @pytest.mark.parametrize("T,D", [(0.1, 0.001), (0.5, 0.3)])
    def test_all_three_agree_small_delay(self, T, D):
        lam, mu = 1.0, 10.0
        horizon, warmup = 25_000.0, 250.0
        markov = SupplementaryVariableCPUModel(lam, mu, T, D).steady_state()
        des = CPUPowerStateSimulator(lam, mu, T, D, seed=8, warmup=warmup).run(horizon)
        petri = CPUPetriModel(lam, mu, T, D).simulate(horizon, seed=8, warmup=warmup)

        for state, markov_p in (
            (CPUStates.STANDBY, markov.standby),
            (CPUStates.IDLE, markov.idle),
            (CPUStates.ACTIVE, markov.active),
            (CPUStates.POWERUP, markov.powerup),
        ):
            assert des.fraction(state) == pytest.approx(markov_p, abs=0.03), state
            assert petri.fraction(state) == pytest.approx(markov_p, abs=0.03), state

    def test_markov_fails_but_petri_tracks_large_delay(self):
        """Fig. 6's headline: D = 10 s breaks the Markov model only."""
        lam, mu, T, D = 1.0, 10.0, 0.5, 10.0
        horizon, warmup = 30_000.0, 500.0
        markov = SupplementaryVariableCPUModel(lam, mu, T, D).steady_state()
        des = CPUPowerStateSimulator(lam, mu, T, D, seed=8, warmup=warmup).run(horizon)
        petri = CPUPetriModel(lam, mu, T, D).simulate(horizon, seed=8, warmup=warmup)

        petri_err = abs(petri.fraction(CPUStates.POWERUP) - des.fraction(CPUStates.POWERUP))
        markov_err = abs(markov.powerup - des.fraction(CPUStates.POWERUP))
        assert petri_err < 0.05
        assert markov_err > 0.3
        assert petri_err < markov_err / 5


class TestExactVsSimulatedExponentialCPU:
    """With T→0 and exponential wake-up, the CPU net is a CTMC: the
    engine must match the exact solve (ablation A2's foundation)."""

    def test_exponential_cpu_net(self):
        lam, mu, nu = 1.0, 10.0, 3.0  # nu = wake-up rate
        from repro.core import tokens_eq, tokens_gt

        def build():
            net = PetriNet("exp-cpu")
            net.add_place("P0", initial_tokens=1)
            net.add_place("Buffer")
            net.add_place("Cap", initial_tokens=25)  # bound for the CTMC
            net.add_place("Sleep", initial_tokens=1)
            net.add_place("On")
            net.add_transition(
                "arrive", Exponential(lam),
                inputs=["P0", "Cap"], outputs=["P0", "Buffer"],
            )
            net.add_transition(
                "wake", Exponential(nu), inputs=["Sleep"], outputs=["On"],
                guard=tokens_gt("Buffer", 0),
            )
            net.add_transition(
                "serve", Exponential(mu), inputs=["On", "Buffer"],
                outputs=["On", "Cap"],
            )
            net.add_transition(
                "sleep", Exponential(100.0), inputs=["On"], outputs=["Sleep"],
                guard=tokens_eq("Buffer", 0),
            )
            return net

        ctmc = spn_to_ctmc(build())
        pi = CTMC(ctmc.Q).steady_state()
        exact_on = ctmc.place_marginal(pi, "On")
        exact_q = ctmc.expected_tokens(pi, "Buffer")

        sim = simulate(build(), horizon=50_000.0, seed=21, warmup=500.0)
        assert sim.occupancy("On") == pytest.approx(exact_on, abs=0.02)
        assert sim.mean_tokens("Buffer") == pytest.approx(exact_q, rel=0.08)
