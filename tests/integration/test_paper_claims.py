"""Scaled-down regeneration of every paper claim, asserted qualitatively.

Each test regenerates a table or figure at reduced horizon and asserts
the claim the paper draws from it — orderings, crossovers, optimum
location bands — not absolute numbers (our substrate is a simulator,
not the authors' testbed).  The full-scale regenerations live in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    CPUComparisonConfig,
    NodeSweepConfig,
    ValidationConfig,
    run_cpu_comparison,
    run_node_energy_sweep,
    run_simple_node_validation,
)


@pytest.fixture(scope="module")
def comparison_small_pud():
    return run_cpu_comparison(
        0.001, CPUComparisonConfig(horizon=800.0, thresholds=(0.001, 0.2, 0.5, 1.0))
    )


@pytest.fixture(scope="module")
def comparison_mid_pud():
    return run_cpu_comparison(
        0.3, CPUComparisonConfig(horizon=800.0, thresholds=(0.001, 0.2, 0.5, 1.0))
    )


@pytest.fixture(scope="module")
def comparison_large_pud():
    return run_cpu_comparison(
        10.0, CPUComparisonConfig(horizon=800.0, thresholds=(0.001, 0.2, 0.5, 1.0))
    )


class TestFigures4to6:
    """State-time shares vs threshold for the three PUD scenarios."""

    def test_fig4_trends(self, comparison_small_pud):
        r = comparison_small_pud
        sim = r.fractions["simulation"]
        assert sim["idle"][0] < sim["idle"][-1]
        assert sim["standby"][0] > sim["standby"][-1]
        assert max(sim["active"]) - min(sim["active"]) < 0.08
        assert max(sim["powerup"]) < 0.01  # wake-ups are instantaneous

    def test_fig5_powerup_visible(self, comparison_mid_pud):
        r = comparison_mid_pud
        assert r.fractions["simulation"]["powerup"][0] > 0.1

    def test_fig6_powerup_dominates(self, comparison_large_pud):
        r = comparison_large_pud
        assert r.fractions["simulation"]["powerup"][0] > 0.5

    def test_fig6_markov_fails_petri_tracks(self, comparison_large_pud):
        r = comparison_large_pud
        assert r.mean_abs_fraction_error("petri") < 0.03
        assert r.mean_abs_fraction_error("markov") > 0.15


class TestTables4to6:
    """Δ-energy orderings."""

    def test_table4_markov_and_petri_comparable(self, comparison_small_pud):
        d = comparison_small_pud.delta_energy()
        # Paper Table IV: Δ(Markov-Petri) ≈ 0.05 J — the two models
        # agree with each other far better than either matches the
        # noisy simulation.
        assert d["markov_petri"].avg < d["sim_markov"].avg
        assert abs(d["sim_markov"].avg - d["sim_petri"].avg) < 1.0

    def test_table5_petri_beats_markov(self, comparison_mid_pud):
        d = comparison_mid_pud.delta_energy()
        assert d["sim_petri"].avg < d["sim_markov"].avg

    def test_table6_markov_catastrophic(self, comparison_large_pud):
        d = comparison_large_pud.delta_energy()
        # Paper Table VI: Δ Sim-Markov ≈ 42 J vs Δ Sim-Petri ≈ 0.12 J.
        assert d["sim_markov"].avg > 10 * d["sim_petri"].avg
        assert d["sim_petri"].rmse < 5.0


class TestTablesVIIItoX:
    """Simple-system validation."""

    @pytest.fixture(scope="class")
    def validation(self):
        return run_simple_node_validation(
            ValidationConfig(n_events=100, petri_horizon=4000.0, seed=3)
        )

    def test_steady_state_matches_analytic_cycle(self, validation):
        probs = validation.petri.stage_probabilities
        assert probs["Wait"] == pytest.approx(0.595, abs=0.03)
        assert probs["Temp_Place"] == pytest.approx(0.198, abs=0.03)
        assert probs["Computation"] == pytest.approx(0.204, abs=0.03)

    def test_table_x_percent_difference(self, validation):
        # Paper: 2.95 %; we assert the same band.
        assert validation.percent_difference < 5.0
        assert validation.percent_difference > 0.5

    def test_petri_energy_close_to_paper_per_second(self, validation):
        # mean power must be ~1.225 mW regardless of run length
        mean_mw = validation.petri.mean_power_mw
        assert mean_mw == pytest.approx(1.225, abs=0.01)


class TestFigures14and15:
    """Node sweeps: optimum location and savings."""

    GRID = (1e-9, 1e-6, 0.0017, 0.00178, 0.005, 0.01, 0.1, 1.0, 10.0)

    @pytest.fixture(scope="class")
    def closed(self):
        return run_node_energy_sweep(
            NodeSweepConfig(workload="closed", horizon=250.0, thresholds=self.GRID)
        )

    @pytest.fixture(scope="class")
    def open_(self):
        return run_node_energy_sweep(
            NodeSweepConfig(workload="open", horizon=250.0, thresholds=self.GRID)
        )

    def test_closed_optimum_in_paper_band(self, closed):
        t_opt, _ = closed.optimum()
        # Paper: 0.00177 s. Anything in the just-above-radio-phase
        # cluster counts as reproducing the crossover.
        assert 0.0017 <= t_opt <= 0.01

    def test_closed_savings_positive_both_ways(self, closed):
        # Paper: 35 % vs immediate, 29 % vs never.
        assert closed.savings_vs_immediate() > 0.10
        assert closed.savings_vs_never() > 0.10

    def test_open_optimum_in_paper_band(self, open_):
        t_opt, _ = open_.optimum()
        assert 0.0017 <= t_opt <= 0.05  # paper: 0.01 s

    def test_open_savings_larger_vs_immediate(self, open_):
        # Paper: 55 % vs immediate for open vs 35 % for closed — the
        # open model wastes more wake-ups at tiny thresholds.
        assert open_.savings_vs_immediate() > 0.25

    def test_wakeup_energy_collapses_past_radio_phase(self, closed):
        wake = dict(zip(closed.thresholds, closed.series("cpu_wakeup")))
        assert wake[0.00178] < 0.7 * wake[1e-9]

    def test_idle_energy_monotone_up(self, closed):
        idle = closed.series("cpu_idle")
        assert idle[0] < idle[-1]

    def test_sleep_energy_vanishes_at_huge_threshold(self, closed):
        sleep = dict(zip(closed.thresholds, closed.series("cpu_sleep")))
        assert sleep[10.0] < 0.1 * sleep[0.005]
