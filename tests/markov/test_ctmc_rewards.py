"""Tests for integrated transients and accumulated rewards (Markov-reward)."""

import numpy as np
import pytest

from repro.markov import CTMC


def two_state(a=1.0, b=2.0):
    return CTMC.from_rates({("on", "off"): a, ("off", "on"): b})


class TestIntegratedTransient:
    def test_entries_sum_to_t(self):
        c = two_state()
        p0 = np.array([1.0, 0.0])
        for t in (0.1, 1.0, 10.0):
            occ = c.integrated_transient(p0, t)
            assert occ.sum() == pytest.approx(t, rel=1e-9)
            assert np.all(occ >= 0)

    def test_t_zero(self):
        c = two_state()
        occ = c.integrated_transient(np.array([1.0, 0.0]), 0.0)
        assert np.allclose(occ, 0.0)

    def test_matches_quadrature(self):
        from scipy.linalg import expm

        c = two_state(1.7, 0.6)
        p0 = np.array([0.3, 0.7])
        t = 2.5
        # composite Simpson over the transient distribution
        n = 401
        s = np.linspace(0.0, t, n)
        values = np.array([p0 @ expm(c.Q * si) for si in s])
        h = s[1] - s[0]
        weights = np.ones(n)
        weights[1:-1:2] = 4.0
        weights[2:-1:2] = 2.0
        simpson = (h / 3.0) * (weights[:, None] * values).sum(axis=0)
        occ = c.integrated_transient(p0, t)
        assert np.allclose(occ, simpson, atol=1e-6)

    def test_long_horizon_approaches_steady_state_share(self):
        c = two_state(1.0, 2.0)
        p0 = np.array([0.0, 1.0])
        pi = c.steady_state()
        # The initial transient contributes O(1) to the integral, so
        # occ/t converges to pi like 1/t.
        errs = []
        for t in (100.0, 400.0, 1600.0):
            occ = c.integrated_transient(p0, t)
            errs.append(np.max(np.abs(occ / t - pi)))
        assert errs[-1] < 1e-3
        assert errs[0] > errs[1] > errs[2]

    def test_absorbing_chain(self):
        Q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        c = CTMC(Q)
        occ = c.integrated_transient(np.array([1.0, 0.0]), 100.0)
        # expected time in transient state = 1/rate = 1
        assert occ[0] == pytest.approx(1.0, rel=1e-3)
        assert occ[1] == pytest.approx(99.0, rel=1e-3)

    def test_validation(self):
        c = two_state()
        with pytest.raises(ValueError):
            c.integrated_transient(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            c.integrated_transient(np.array([1.0, 0.0]), -1.0)


class TestAccumulatedReward:
    def test_transient_energy_two_state(self):
        # CPU on at 193 mW, off at 17 mW: transient energy from "off".
        c = two_state(1.0, 2.0)
        p0 = np.zeros(2)
        p0[c.index_of("off")] = 1.0
        e = c.accumulated_reward(p0, 10.0, {"on": 193.0, "off": 17.0})
        # bounded by the extreme constant draws
        assert 17.0 * 10.0 <= e <= 193.0 * 10.0

    def test_matches_steady_state_rate_for_long_t(self):
        c = two_state(0.7, 1.9)
        pi = c.steady_state()
        rewards = {"on": 5.0, "off": 1.0}
        rate = c.expected_reward_rate(pi, rewards)
        t = 500.0
        e = c.accumulated_reward(
            np.array([1.0, 0.0]), t, rewards
        )
        assert e / t == pytest.approx(rate, rel=1e-3)

    def test_missing_labels_count_zero(self):
        c = two_state()
        e = c.accumulated_reward(np.array([1.0, 0.0]), 1.0, {})
        assert e == 0.0

    def test_linear_in_rewards(self):
        c = two_state()
        p0 = np.array([0.5, 0.5])
        e1 = c.accumulated_reward(p0, 3.0, {"on": 1.0})
        e2 = c.accumulated_reward(p0, 3.0, {"on": 2.0})
        assert e2 == pytest.approx(2 * e1)
