"""Unit tests for reference queueing formulas."""

import pytest

from repro.markov import (
    erlang_b,
    erlang_c,
    md1_mean_queue_length,
    mg1_mean_queue_length,
    mm1_metrics,
)


class TestMM1:
    def test_standard_metrics(self):
        m = mm1_metrics(1.0, 2.0)
        assert m.rho == pytest.approx(0.5)
        assert m.mean_number_in_system == pytest.approx(1.0)
        assert m.mean_number_in_queue == pytest.approx(0.5)
        assert m.mean_time_in_system == pytest.approx(1.0)
        assert m.mean_waiting_time == pytest.approx(0.5)
        assert m.p_empty == pytest.approx(0.5)

    def test_littles_law_consistency(self):
        m = mm1_metrics(0.7, 1.0)
        assert m.mean_number_in_system == pytest.approx(
            0.7 * m.mean_time_in_system
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1_metrics(2.0, 1.0)
        with pytest.raises(ValueError):
            mm1_metrics(0.0, 1.0)


class TestMG1:
    def test_exponential_service_reduces_to_mm1(self):
        lam, mu = 1.0, 2.0
        mean_s = 1 / mu
        var_s = 1 / mu**2
        L = mg1_mean_queue_length(lam, mean_s, var_s)
        assert L == pytest.approx(mm1_metrics(lam, mu).mean_number_in_system)

    def test_md1_half_the_queueing(self):
        lam, d = 1.0, 0.5
        L_md1 = md1_mean_queue_length(lam, d)
        L_mm1 = mm1_metrics(lam, 2.0).mean_number_in_system
        # M/D/1 Lq is half of M/M/1 Lq
        lq_md1 = L_md1 - 0.5
        lq_mm1 = L_mm1 - 0.5
        assert lq_md1 == pytest.approx(lq_mm1 / 2)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mg1_mean_queue_length(2.0, 1.0, 0.0)


class TestErlang:
    def test_erlang_b_known_value(self):
        # a=1 erlang, 1 server: B = 1/(1+1) = 0.5
        assert erlang_b(1.0, 1) == pytest.approx(0.5)

    def test_erlang_b_zero_servers(self):
        assert erlang_b(1.0, 0) == pytest.approx(1.0)

    def test_erlang_b_monotone_in_servers(self):
        vals = [erlang_b(5.0, c) for c in range(1, 15)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_erlang_c_known_value(self):
        # a=1, c=2: C = 2B/(2 - a(1-B)) with B = erlang_b(1,2) = 0.2
        b = erlang_b(1.0, 2)
        expected = 2 * b / (2 - 1 * (1 - b))
        assert erlang_c(1.0, 2) == pytest.approx(expected)

    def test_erlang_c_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(2.0, 2)
        with pytest.raises(ValueError):
            erlang_c(1.0, 0)
