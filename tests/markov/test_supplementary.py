"""Unit + property tests for the paper's supplementary-variable CPU model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import SupplementaryVariableCPUModel


def model(T=0.1, D=0.3, lam=1.0, mu=10.0):
    return SupplementaryVariableCPUModel(lam, mu, T, D)


class TestEquations:
    def test_probabilities_sum_to_one(self):
        ss = model().steady_state()
        assert ss.total() == pytest.approx(1.0)

    def test_active_fraction_approaches_rho(self):
        # For small T, D: active ≈ rho (the CPU must serve the load).
        ss = model(T=1e-6, D=1e-6).steady_state()
        assert ss.active == pytest.approx(0.1, abs=1e-4)

    def test_t_zero_means_no_idle(self):
        ss = model(T=0.0, D=0.001).steady_state()
        assert ss.idle == pytest.approx(0.0, abs=1e-12)

    def test_d_zero_means_no_powerup(self):
        ss = model(T=0.1, D=0.0).steady_state()
        assert ss.powerup == pytest.approx(0.0, abs=1e-12)

    def test_idle_grows_with_threshold(self):
        idles = [model(T=t).steady_state().idle for t in (0.01, 0.1, 0.5, 1.0)]
        assert all(a < b for a, b in zip(idles, idles[1:]))

    def test_standby_shrinks_with_threshold(self):
        sbs = [model(T=t).steady_state().standby for t in (0.01, 0.1, 0.5, 1.0)]
        assert all(a > b for a, b in zip(sbs, sbs[1:]))

    def test_powerup_grows_then_saturates_with_delay(self):
        # Eq. (3)'s numerator is bounded by (1 - rho) while the
        # denominator grows like rho*lam*D, so p_u rises for small D but
        # saturates and *decays* for large D — this severe
        # underestimation of power-up time at D = 10 s is precisely the
        # Markov-model failure Figs. 6/9 demonstrate.
        pus = [model(D=d).steady_state().powerup for d in (0.001, 0.1, 1.0)]
        assert all(a < b for a, b in zip(pus, pus[1:]))
        assert model(D=10.0).steady_state().powerup < model(D=1.0).steady_state().powerup
        # The DES ground truth at D = 10 spends ~80% of time powering
        # up; Eq. (3) caps below 35% here.
        assert model(D=10.0).steady_state().powerup < 0.35

    def test_explicit_equation_values(self):
        # Hand-evaluated Eqs. (1)-(4) at lam=1, mu=10, T=0.5, D=0.3.
        lam, mu, T, D = 1.0, 10.0, 0.5, 0.3
        rho = lam / mu
        Z = math.exp(lam * T) + (1 - rho) * (1 - math.exp(-lam * D)) + rho * lam * D
        ss = model(T=T, D=D, lam=lam, mu=mu).steady_state()
        assert ss.standby == pytest.approx((1 - rho) / Z)
        assert ss.idle == pytest.approx((1 - rho) * (math.exp(lam * T) - 1) / Z)
        assert ss.powerup == pytest.approx(
            (1 - rho) * (1 - math.exp(-lam * D)) / Z
        )
        assert ss.active == pytest.approx(rho * (math.exp(lam * T) + lam * D) / Z)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(0.0, 5.0),
        st.floats(0.0, 20.0),
        st.floats(0.05, 0.95),
    )
    def test_normalisation_property(self, T, D, rho):
        m = SupplementaryVariableCPUModel(1.0, 1.0 / rho, T, D)
        ss = m.steady_state()
        assert ss.total() == pytest.approx(1.0, abs=1e-9)
        for p in (ss.standby, ss.idle, ss.powerup, ss.active):
            assert -1e-12 <= p <= 1.0 + 1e-12


class TestValidation:
    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            SupplementaryVariableCPUModel(10.0, 1.0, 0.1, 0.1)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            SupplementaryVariableCPUModel(1.0, 10.0, -0.1, 0.1)
        with pytest.raises(ValueError):
            SupplementaryVariableCPUModel(1.0, 10.0, 0.1, -0.1)
        with pytest.raises(ValueError):
            SupplementaryVariableCPUModel(0.0, 10.0, 0.1, 0.1)


class TestEnergy:
    POWERS = {"standby": 17.0, "idle": 88.0, "powerup": 192.976, "active": 193.0}

    def test_mean_power_weighted(self):
        m = model()
        ss = m.steady_state()
        expected = (
            ss.standby * 17.0
            + ss.idle * 88.0
            + ss.powerup * 192.976
            + ss.active * 193.0
        )
        assert m.mean_power(self.POWERS) == pytest.approx(expected)

    def test_energy_over_time_linear(self):
        m = model()
        e1 = m.energy_over_time(self.POWERS, 100.0)
        e2 = m.energy_over_time(self.POWERS, 200.0)
        assert e2 == pytest.approx(2 * e1)

    def test_eq6_horizon_close_to_n_over_lambda(self):
        m = model()
        # L(1)/2 correction is small at rho = 0.1
        assert m.effective_horizon(1000) == pytest.approx(1000.0, rel=0.001)

    def test_energy_eq6(self):
        m = model()
        e = m.energy(self.POWERS, 1000)
        assert e == pytest.approx(
            m.mean_power(self.POWERS) * m.effective_horizon(1000)
        )

    def test_negative_inputs_rejected(self):
        m = model()
        with pytest.raises(ValueError):
            m.energy(self.POWERS, -1)
        with pytest.raises(ValueError):
            m.energy_over_time(self.POWERS, -1.0)

    def test_missing_states_default_zero(self):
        m = model()
        assert m.mean_power({}) == 0.0
