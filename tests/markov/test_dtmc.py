"""Unit tests for the DTMC solver."""

import numpy as np
import pytest

from repro.markov import DTMC


def two_state(p=0.3, q=0.6):
    return DTMC(np.array([[1 - p, p], [q, 1 - q]]), labels=["a", "b"])


class TestConstruction:
    def test_valid(self):
        d = two_state()
        assert d.n == 2
        assert d.index_of("b") == 1

    def test_rows_must_be_stochastic(self):
        with pytest.raises(ValueError):
            DTMC(np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            DTMC(np.array([[1.1, -0.1], [0.5, 0.5]]))

    def test_square_required(self):
        with pytest.raises(ValueError):
            DTMC(np.ones((2, 3)) / 3)


class TestStationary:
    def test_two_state(self):
        d = two_state(0.3, 0.6)
        pi = d.stationary()
        # pi_a * 0.3 = pi_b * 0.6 -> pi_a = 2/3
        assert pi[0] == pytest.approx(2 / 3)

    def test_fixed_point(self):
        d = two_state(0.25, 0.5)
        pi = d.stationary()
        assert np.allclose(pi @ d.P, pi)

    def test_step_converges(self):
        d = two_state()
        p = np.array([1.0, 0.0])
        assert np.allclose(d.step(p, 500), d.stationary(), atol=1e-10)


class TestAbsorption:
    def gamblers_ruin(self):
        # states 0 (broke), 1, 2, 3 (rich); fair coin
        P = np.array(
            [
                [1.0, 0, 0, 0],
                [0.5, 0, 0.5, 0],
                [0, 0.5, 0, 0.5],
                [0, 0, 0, 1.0],
            ]
        )
        return DTMC(P)

    def test_absorbing_states(self):
        assert self.gamblers_ruin().absorbing_states() == [0, 3]

    def test_absorption_times(self):
        t = self.gamblers_ruin().absorption_times()
        # classic: from i, expected steps = i*(N-i) with N=3
        assert t[1] == pytest.approx(2.0)
        assert t[2] == pytest.approx(2.0)
        assert t[0] == 0.0

    def test_absorption_probabilities(self):
        B = self.gamblers_ruin().absorption_probabilities()
        # from state 1: P(broke) = 2/3, P(rich) = 1/3
        assert B[1, 0] == pytest.approx(2 / 3)
        assert B[1, 1] == pytest.approx(1 / 3)
        # absorbing rows are unit vectors
        assert B[0, 0] == 1.0
        assert B[3, 1] == 1.0

    def test_no_absorbing_raises(self):
        with pytest.raises(ValueError):
            two_state().absorption_times()
        with pytest.raises(ValueError):
            two_state().absorption_probabilities()
