"""Unit + property tests for the CTMC solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import CTMC


def two_state(a=1.0, b=2.0):
    """on --a--> off --b--> on."""
    return CTMC.from_rates({("on", "off"): a, ("off", "on"): b})


class TestConstruction:
    def test_from_rates(self):
        c = two_state()
        assert c.n == 2
        assert c.labels == ["on", "off"]
        assert c.Q[c.index_of("on"), c.index_of("off")] == 1.0

    def test_row_sums_zero(self):
        c = two_state()
        assert np.allclose(c.Q.sum(axis=1), 0.0)

    def test_bad_generator_rejected(self):
        with pytest.raises(ValueError):
            CTMC(np.array([[0.0, -1.0], [1.0, -1.0]]))
        with pytest.raises(ValueError):
            CTMC(np.array([[-1.0, 2.0], [1.0, -1.0]]))
        with pytest.raises(ValueError):
            CTMC(np.zeros((2, 3)))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CTMC.from_rates({("a", "b"): -1.0})

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            CTMC(np.zeros((2, 2)), labels=["only-one"])


class TestSteadyState:
    def test_two_state_balance(self):
        c = two_state(1.0, 2.0)
        pi = c.steady_state()
        # pi_on * 1 = pi_off * 2 -> pi_on = 2/3
        assert c.probability(pi, "on") == pytest.approx(2 / 3)
        assert c.probability(pi, "off") == pytest.approx(1 / 3)

    def test_sums_to_one(self):
        pi = two_state(0.3, 0.7).steady_state()
        assert pi.sum() == pytest.approx(1.0)

    def test_global_balance_residual(self):
        c = two_state(1.3, 0.4)
        pi = c.steady_state()
        assert np.allclose(pi @ c.Q, 0.0, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.1, 10.0), min_size=3, max_size=3),
    )
    def test_three_state_cycle_properties(self, rates):
        a, b, c_rate = rates
        c = CTMC.from_rates(
            {(0, 1): a, (1, 2): b, (2, 0): c_rate}, labels=[0, 1, 2]
        )
        pi = c.steady_state()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= -1e-12)
        assert np.allclose(pi @ c.Q, 0.0, atol=1e-8)


class TestTransient:
    def test_t_zero_is_identity(self):
        c = two_state()
        p0 = np.array([1.0, 0.0])
        assert np.allclose(c.transient(p0, 0.0), p0)

    def test_converges_to_steady_state(self):
        c = two_state(1.0, 2.0)
        p0 = np.array([0.0, 1.0])
        pt = c.transient(p0, 50.0)
        assert np.allclose(pt, c.steady_state(), atol=1e-8)

    def test_short_horizon_mass_conserved(self):
        c = two_state(5.0, 3.0)
        p0 = np.array([0.5, 0.5])
        pt = c.transient(p0, 0.123)
        assert pt.sum() == pytest.approx(1.0)
        assert np.all(pt >= 0)

    def test_matches_matrix_exponential(self):
        from scipy.linalg import expm

        c = two_state(1.7, 0.9)
        p0 = np.array([1.0, 0.0])
        for t in (0.1, 1.0, 3.0):
            expected = p0 @ expm(c.Q * t)
            assert np.allclose(c.transient(p0, t), expected, atol=1e-8)

    def test_invalid_inputs(self):
        c = two_state()
        with pytest.raises(ValueError):
            c.transient(np.array([0.5, 0.6]), 1.0)  # not a distribution
        with pytest.raises(ValueError):
            c.transient(np.array([1.0, 0.0]), -1.0)
        with pytest.raises(ValueError):
            c.transient(np.array([1.0]), 1.0)


class TestDerived:
    def test_embedded_dtmc(self):
        c = two_state(2.0, 4.0)
        P = c.embedded_dtmc()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert P[0, 1] == pytest.approx(1.0)

    def test_holding_times(self):
        c = two_state(2.0, 4.0)
        h = c.holding_times()
        assert h[0] == pytest.approx(0.5)
        assert h[1] == pytest.approx(0.25)

    def test_absorbing_holding_time_infinite(self):
        Q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        c = CTMC(Q)
        assert c.holding_times()[1] == np.inf

    def test_mean_first_passage_two_state(self):
        c = two_state(2.0, 4.0)
        h = c.mean_first_passage("off")
        # From on: exp(2) to reach off -> 0.5
        assert h[c.index_of("on")] == pytest.approx(0.5)
        assert h[c.index_of("off")] == 0.0

    def test_expected_reward_rate(self):
        c = two_state(1.0, 2.0)
        pi = c.steady_state()
        # on: 2/3 at 90mW; off: 1/3 at 30mW
        assert c.expected_reward_rate(pi, {"on": 90.0, "off": 30.0}) == pytest.approx(70.0)
