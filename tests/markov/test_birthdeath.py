"""Unit tests for birth-death chains."""

import numpy as np
import pytest

from repro.markov import BirthDeathChain, CTMC, mm1_steady_state


class TestBirthDeathChain:
    def test_mm1k_matches_ctmc(self):
        bd = BirthDeathChain.mm1k(1.0, 2.0, 6)
        pi_bd = bd.steady_state()
        pi_ctmc = bd.to_ctmc().steady_state()
        assert np.allclose(pi_bd, pi_ctmc, atol=1e-10)

    def test_mm1k_distribution_shape(self):
        bd = BirthDeathChain.mm1k(1.0, 2.0, 10)
        pi = bd.steady_state()
        # rho = 0.5: each level halves
        ratios = pi[1:] / pi[:-1]
        assert np.allclose(ratios, 0.5)

    def test_mean_population(self):
        bd = BirthDeathChain.mm1k(1.0, 2.0, 50)
        # K large: approaches M/M/1 mean rho/(1-rho) = 1
        assert bd.mean_population() == pytest.approx(1.0, rel=1e-4)

    def test_zero_birth_truncates(self):
        bd = BirthDeathChain([1.0, 0.0], [1.0, 1.0])
        pi = bd.steady_state()
        assert pi[2] == 0.0
        assert pi.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BirthDeathChain([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            BirthDeathChain([-1.0], [1.0])
        with pytest.raises(ValueError):
            BirthDeathChain([1.0], [0.0])
        with pytest.raises(ValueError):
            BirthDeathChain.mm1k(0.0, 1.0, 5)


class TestMM1SteadyState:
    def test_geometric_form(self):
        pi = mm1_steady_state(1.0, 2.0, 30)
        assert pi[0] == pytest.approx(0.5, rel=1e-6)
        assert pi[1] / pi[0] == pytest.approx(0.5)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1_steady_state(2.0, 1.0, 10)
        with pytest.raises(ValueError):
            mm1_steady_state(-1.0, 1.0, 10)

    def test_normalised(self):
        pi = mm1_steady_state(0.9, 1.0, 200)
        assert pi.sum() == pytest.approx(1.0)
