"""Tests for distribution fitting from traces."""

import numpy as np
import pytest

from repro.core.distributions import Deterministic, Erlang, Exponential, LogNormal
from repro.markov import (
    fit_best,
    fit_deterministic,
    fit_erlang,
    fit_exponential,
    fit_lognormal,
)

RNG = np.random.default_rng(77)


class TestIndividualFitters:
    def test_exponential_recovers_rate(self):
        samples = RNG.exponential(0.25, 20_000)
        dist = fit_exponential(samples)
        assert dist.rate == pytest.approx(4.0, rel=0.03)

    def test_deterministic_mean(self):
        dist = fit_deterministic([2.0, 2.0, 2.0])
        assert dist.delay == 2.0

    def test_erlang_recovers_shape(self):
        samples = RNG.gamma(4, 0.5, 20_000)  # Erlang-4, rate 2
        dist = fit_erlang(samples)
        assert dist.k == 4
        assert dist.mean() == pytest.approx(2.0, rel=0.03)

    def test_erlang_constant_data_gives_max_k(self):
        dist = fit_erlang([1.0, 1.0, 1.0], max_k=100)
        assert dist.k == 100
        assert dist.mean() == pytest.approx(1.0)

    def test_lognormal_recovers_moments(self):
        true = LogNormal.from_mean_cv(2.0, 0.4)
        samples = RNG.lognormal(true.mu, true.sigma, 20_000)
        dist = fit_lognormal(samples)
        assert dist.mean() == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0])  # too few
        with pytest.raises(ValueError):
            fit_exponential([-1.0, 1.0])
        with pytest.raises(ValueError):
            fit_exponential([0.0, 0.0])
        with pytest.raises(ValueError):
            fit_lognormal([1.0, 1.0])  # zero variance


class TestFitBest:
    def test_selects_exponential_for_exponential_data(self):
        samples = RNG.exponential(1.0, 5000)
        dist = fit_best(samples)
        assert isinstance(dist, (Exponential, Erlang))
        if isinstance(dist, Erlang):
            assert dist.k <= 2  # close call with Erlang-1 is acceptable
        assert dist.mean() == pytest.approx(1.0, rel=0.06)

    def test_selects_erlang_for_low_variance_data(self):
        samples = RNG.gamma(16, 1 / 16, 5000)  # Erlang-16, mean 1
        dist = fit_best(samples)
        assert isinstance(dist, Erlang)
        assert 8 <= dist.k <= 32

    def test_selects_deterministic_for_constant_data(self):
        dist = fit_best([0.253] * 50)
        assert isinstance(dist, Deterministic)
        assert dist.delay == pytest.approx(0.253)

    def test_selects_heavy_tail_for_lognormal_data(self):
        true = LogNormal.from_mean_cv(1.0, 2.5)
        samples = RNG.lognormal(true.mu, true.sigma, 5000)
        dist = fit_best(samples)
        assert isinstance(dist, LogNormal)

    def test_fitted_distribution_is_usable_in_a_net(self):
        from repro.core import PetriNet, simulate

        samples = RNG.exponential(0.5, 2000)
        dist = fit_best(samples)
        net = PetriNet()
        net.add_place("src", initial_tokens=1)
        net.add_place("q")
        net.add_transition("gen", dist, inputs=["src"], outputs=["src", "q"])
        net.add_transition("sink", Exponential(10.0), inputs=["q"])
        result = simulate(net, horizon=3000.0, seed=1, warmup=100.0)
        assert result.throughput("gen") == pytest.approx(2.0, rel=0.1)
