"""Unit tests for the network-dynamics layer: churn and bursty traffic.

The churn schedule is the seam that keeps dynamic topologies inside
the repo's bit-identity contract — it must be a pure, deterministic
function of ``(topology, base_rate, horizon, seed)``, computed wholly
in the parent.  These tests pin that purity plus the structural
invariants of the schedule (epoch tiling, segment accounting, rewiring
policies) and the mean-rate preservation of the MMPP traffic model.
"""

import pytest

from repro.models.network import GridTopology, LineTopology
from repro.models.wsn_node import NodeParameters, WSNNodeModel
from repro.topology import (
    SINK,
    UNREACHABLE,
    ChurnModel,
    ClusterTreeTopology,
    MMPPTraffic,
    RandomGeometricTopology,
    climb_rewire,
)

#: At rate 1/s over 50 s, every node of a small net fails with
#: probability ~1 — so any fixed seed gives a non-trivial schedule.
BUSY = ChurnModel(failure_rate=1.0, duty_spread=0.2)


class TestChurnModelValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ChurnModel(failure_rate=-1.0)
        with pytest.raises(ValueError):
            ChurnModel(duty_spread=1.0)
        with pytest.raises(ValueError):
            ChurnModel(duty_spread=-0.1)
        with pytest.raises(ValueError):
            ChurnModel(max_failures=-1)

    def test_inert_model_is_inactive(self):
        assert not ChurnModel().is_active()
        assert ChurnModel(failure_rate=0.01).is_active()
        assert ChurnModel(duty_spread=0.3).is_active()


class TestChurnSchedule:
    def test_pure_function_of_its_arguments(self):
        topo = ClusterTreeTopology(fanout=2, depth=3)
        a = BUSY.schedule(topo, 0.5, 50.0, seed=9)
        b = BUSY.schedule(topo, 0.5, 50.0, seed=9)
        assert a == b
        assert a != BUSY.schedule(topo, 0.5, 50.0, seed=10)

    def test_epochs_tile_the_horizon(self):
        sched = BUSY.schedule(LineTopology(6), 1.0, 50.0, seed=3)
        assert sched.epochs[0].start_s == 0.0
        assert sched.epochs[-1].end_s == 50.0
        for prev, cur in zip(sched.epochs, sched.epochs[1:]):
            assert prev.end_s == cur.start_s

    def test_failures_sorted_capped_and_inside_horizon(self):
        model = ChurnModel(failure_rate=1.0, max_failures=3)
        sched = model.schedule(GridTopology(4, 4), 1.0, 50.0, seed=1)
        assert len(sched.failures) == 3
        times = [t for t, _ in sched.failures]
        assert times == sorted(times)
        assert all(0 < t < 50.0 for t in times)

    def test_no_duty_spread_keeps_baseline_rates(self):
        # With duty variation off, the first epoch (nobody dead yet)
        # must carry exactly the static topology's effective rates.
        topo = ClusterTreeTopology(fanout=3, depth=2)
        model = ChurnModel(failure_rate=0.01)
        sched = model.schedule(topo, 1.0, 20.0, seed=5)
        assert list(sched.epochs[0].rates) == topo.effective_rates(1.0)

    def test_duty_factors_stay_inside_the_spread(self):
        model = ChurnModel(duty_spread=0.3)
        sched = model.schedule(LineTopology(40), 1.0, 10.0, seed=2)
        assert all(0.7 <= d <= 1.3 for d in sched.duty)
        assert len(set(sched.duty)) > 1

    def test_survivor_segments_cover_the_horizon(self):
        sched = BUSY.schedule(LineTopology(5), 1.0, 50.0, seed=4)
        dead = {i for _, i in sched.failures}
        for i in range(5):
            segs = sched.node_segments(i, node_seed=100 + i)
            covered = sum(s.duration_s for s in segs)
            if i in dead:
                assert covered == pytest.approx(sched.failure_time(i))
            else:
                assert sched.failure_time(i) is None
                assert covered == pytest.approx(50.0)

    def test_segment_seeds_depend_only_on_node_seed_and_epoch(self):
        sched = BUSY.schedule(LineTopology(5), 1.0, 50.0, seed=4)
        again = BUSY.schedule(LineTopology(5), 1.0, 50.0, seed=4)
        assert sched.node_segments(2, 77) == again.node_segments(2, 77)
        seeds = [s.seed for s in sched.node_segments(2, 77)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [s.seed for s in sched.node_segments(2, 78)]

    def test_dead_nodes_have_no_rate_after_death(self):
        sched = BUSY.schedule(LineTopology(5), 1.0, 50.0, seed=4)
        first_death = sched.failures[0][1]
        for epoch in sched.epochs[1:]:
            assert epoch.rates[first_death] is None
            assert not epoch.alive[first_death]

    def test_report_is_consistent(self):
        sched = BUSY.schedule(LineTopology(6), 1.0, 50.0, seed=8)
        report = sched.report()
        assert report.failures == len(sched.failures)
        assert report.survivors == 6 - report.failures
        # "Reparented" counts nodes rewired while still alive, so it can
        # include nodes that die later — but never more than the net.
        assert 0 <= report.reparented <= 6

    def test_rejects_degenerate_runs(self):
        with pytest.raises(ValueError):
            BUSY.schedule(LineTopology(3), 1.0, 0.0, seed=1)
        with pytest.raises(ValueError):
            BUSY.schedule(LineTopology(3), 0.0, 10.0, seed=1)


class TestRewiring:
    def test_climb_rewire_skips_dead_ancestors(self):
        # Line 0 <- 1 <- 2 <- 3; killing node 1 sends node 2 to its
        # grandparent, leaves node 3 on its (live) parent 2.
        parents = (SINK, 0, 1, 2)
        assert climb_rewire(parents, [True, False, True, True]) == (
            SINK,
            UNREACHABLE,
            0,
            2,
        )

    def test_climb_rewire_reaches_the_sink_if_needed(self):
        parents = (SINK, 0, 1, 2)
        assert climb_rewire(parents, [False, False, False, True]) == (
            UNREACHABLE,
            UNREACHABLE,
            UNREACHABLE,
            SINK,
        )

    def test_line_topology_uses_climb_policy(self):
        topo = LineTopology(4)
        assert topo.rewire([True, False, True, True]) == (SINK, UNREACHABLE, 0, 2)

    def test_geometric_rewire_recomputes_over_live_graph(self):
        topo = RandomGeometricTopology(40, seed=6)
        alive = [True] * 40
        alive[0] = False
        rewired = topo.rewire(alive)
        assert rewired[0] == UNREACHABLE
        # Survivors either keep a live route or are explicitly cut off;
        # no survivor may route through the dead node.
        for i in range(1, 40):
            assert rewired[i] != 0
        assert topo.rewire(alive) == rewired  # deterministic


class TestMMPPTraffic:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MMPPTraffic(burst_on_s=0.0)
        with pytest.raises(ValueError):
            MMPPTraffic(burst_off_s=-1.0)
        with pytest.raises(ValueError):
            MMPPTraffic(off_fraction=1.5)

    def test_mean_rate_preserved(self):
        traffic = MMPPTraffic(burst_on_s=5.0, burst_off_s=15.0, off_fraction=0.1)
        rate_on, rate_off = traffic.rates(0.4)
        p = traffic.on_probability
        assert p * rate_on + (1 - p) * rate_off == pytest.approx(0.4)
        assert rate_on > 0.4 > rate_off

    def test_pure_on_off_source(self):
        traffic = MMPPTraffic(burst_on_s=5.0, burst_off_s=15.0)
        rate_on, rate_off = traffic.rates(0.25)
        assert rate_off == 0.0
        assert rate_on == pytest.approx(0.25 / traffic.on_probability)

    def test_workload_carries_the_mean_rate(self):
        workload = MMPPTraffic(burst_on_s=2.0, burst_off_s=8.0).workload(0.5)
        assert workload.mean_rate() == pytest.approx(0.5)
        assert workload.mean_interarrival() == pytest.approx(2.0)

    def test_workload_simulates_through_the_node_model(self):
        workload = MMPPTraffic(burst_on_s=2.0, burst_off_s=4.0).workload(2.0)
        params = NodeParameters(power_down_threshold=0.01, arrival_rate=2.0)
        result = WSNNodeModel(params, workload).simulate(40.0, seed=11)
        assert result.events_completed > 0
        again = WSNNodeModel(params, workload).simulate(40.0, seed=11)
        assert again == result
