"""The bit-identity invariant matrix, extended to dynamic topologies.

The static network layer already guarantees that every ``workers`` /
``shards`` / ``shard_strategy`` / backend combination reproduces the
serial run exactly.  Churn and bursty traffic must not loosen that by
one bit: the schedule is drawn in the parent, so a churn run is the
same pure function of ``(topology, horizon, seed, base_rate)`` no
matter how the node set is distributed.  This suite replays the
PR 2 / PR 4 invariant matrix on a churning, bursty cluster tree, pins
the warm/cold store equivalence of the new task tuples, and runs the
1000-node gallery scenario end-to-end through both ``scenario run``
and the serving API.
"""

import io
import threading
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.models.network import NetworkResult, SensorNetworkModel
from repro.models.wsn_node import NodeParameters
from repro.runtime import ExecutionConfig
from repro.runtime.remote import SocketBackend, serve_worker
from repro.runtime.store import ResultStore
from repro.scenarios import ScenarioSpec, run_scenario
from repro.serving import SweepService
from repro.topology import (
    ChurnModel,
    ClusterTreeTopology,
    MMPPTraffic,
    RandomGeometricTopology,
)

CHURN = ChurnModel(failure_rate=0.05, duty_spread=0.3)
BURSTY = MMPPTraffic(burst_on_s=2.0, burst_off_s=6.0)
RUN = dict(horizon=10.0, seed=7, base_rate=0.5)


def dynamic_network(topology=None):
    return SensorNetworkModel(
        topology if topology is not None else ClusterTreeTopology(2, 2),
        NodeParameters(power_down_threshold=0.01),
        dynamics=CHURN,
        traffic=BURSTY,
    )


@pytest.fixture(scope="module")
def serial():
    """The ground truth every distributed spelling must reproduce."""
    return dynamic_network().simulate(**RUN)


@pytest.fixture(scope="module")
def socket_port():
    """One in-process socket worker shared by the whole module."""
    ready = threading.Event()
    ports = []

    def announce(line):
        ports.append(int(line.rsplit(":", 1)[1]))
        ready.set()

    threading.Thread(
        target=serve_worker,
        args=(0,),
        kwargs={"max_sessions": None, "announce": announce},
        daemon=True,
    ).start()
    assert ready.wait(10), "worker never announced its port"
    return ports[0]


class TestChurnBitIdentity:
    def test_churn_run_actually_churns(self, serial):
        # Guard against vacuous identity: the matrix below only means
        # something if this configuration exercises the dynamic path.
        assert serial.dynamics is not None
        assert serial.dynamics.failures > 0

    @pytest.mark.parametrize("shards", [2, 3, 6])
    @pytest.mark.parametrize("strategy", ["contiguous", "round-robin"])
    def test_sharded_matches_serial(self, serial, shards, strategy):
        sharded = dynamic_network().simulate(
            **RUN, shards=shards, shard_strategy=strategy
        )
        assert sharded == serial

    def test_process_workers_match_serial(self, serial):
        parallel = dynamic_network().simulate(**RUN, workers=2)
        assert parallel == serial

    def test_socket_backend_matches_serial(self, serial, socket_port):
        remote = dynamic_network().simulate(
            **RUN,
            shards=2,
            backend=SocketBackend([f"127.0.0.1:{socket_port}"]),
        )
        assert remote == serial

    def test_spawn_seed_mode_shard_invariant(self):
        runs = [
            dynamic_network().simulate(**RUN, shards=shards, seed_mode="spawn")
            for shards in (1, 2, 6)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_geometric_topology_shards_identically(self):
        net = dynamic_network(RandomGeometricTopology(30, seed=5))
        reference = net.simulate(horizon=5.0, seed=3, base_rate=0.2)
        sharded = net.simulate(horizon=5.0, seed=3, base_rate=0.2, shards=4)
        assert sharded == reference

    def test_warm_store_matches_cold(self, tmp_path, serial):
        store = ResultStore(tmp_path)
        cold = dynamic_network().simulate(**RUN, shards=2, store=store)
        assert cold == serial
        puts = store.puts
        assert puts > 0
        warm = dynamic_network().simulate(**RUN, shards=2, store=store)
        assert warm == serial
        assert store.misses == puts, "warm run must not recompute"
        assert store.hits == puts, "every node entry must be served back"

    def test_failed_nodes_lifetime_clipped(self, serial):
        sched = CHURN.schedule(ClusterTreeTopology(2, 2), 0.5, 10.0, seed=7)
        for node in serial.nodes:
            t_fail = sched.failure_time(node.node_id - 1)
            if t_fail is not None:
                assert node.lifetime_days <= t_fail / 86400.0 + 1e-12


class TestLegacyPathUntouched:
    def test_inert_dynamics_normalised_away(self):
        topo = ClusterTreeTopology(2, 2)
        params = NodeParameters(power_down_threshold=0.01)
        inert = SensorNetworkModel(topo, params, dynamics=ChurnModel())
        assert inert.dynamics is None
        plain = SensorNetworkModel(topo, params)
        assert inert.simulate(**RUN) == plain.simulate(**RUN)

    def test_static_runs_carry_no_churn_report(self):
        topo = ClusterTreeTopology(2, 2)
        result = SensorNetworkModel(
            topo, NodeParameters(power_down_threshold=0.01)
        ).simulate(**RUN)
        assert result.dynamics is None

    def test_bursty_without_churn_shards_identically(self):
        # Traffic-only runs use the legacy single-segment task path
        # (with MMPP workloads substituted) and must still shard exactly.
        net = SensorNetworkModel(
            ClusterTreeTopology(2, 2),
            NodeParameters(power_down_threshold=0.01),
            traffic=BURSTY,
        )
        reference = net.simulate(**RUN)
        assert reference.dynamics is None
        assert net.simulate(**RUN, shards=3, workers=2) == reference

    def test_merge_never_invents_a_report(self, serial):
        shard_like = NetworkResult(
            topology=serial.topology,
            power_down_threshold=serial.power_down_threshold,
            horizon_s=serial.horizon_s,
            nodes=serial.nodes[:3],
        )
        other = NetworkResult(
            topology=serial.topology,
            power_down_threshold=serial.power_down_threshold,
            horizon_s=serial.horizon_s,
            nodes=serial.nodes[3:],
        )
        assert NetworkResult.merge([shard_like, other]).dynamics is None


GEO1000_SMOKE = {
    "version": 2,
    "name": "geo1000-serving-test",
    "model": "network",
    "params": {
        "topology": "geometric",
        "nodes": 1000,
        "threshold": 0.01,
        "sweep": False,
        "horizon": 2.0,
        "base_rate": 0.1,
        "seed": 2010,
    },
    "execution": {"workers": 2, "shards": 4},
}


class TestThousandNodeEndToEnd:
    @pytest.fixture(scope="class")
    def reference(self):
        """``scenario run`` ground truth for the smoke-scale geo1000."""
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = run_scenario(ScenarioSpec.from_dict(GEO1000_SMOKE))
        assert code == 0
        return buf.getvalue()

    def test_scenario_run_covers_all_nodes(self, reference):
        assert "1000" in reference
        assert "random geometric" in reference

    def test_serving_api_matches_scenario_run(self, tmp_path, reference):
        with SweepService(
            ExecutionConfig(store_dir=tmp_path / "store"),
            progress_interval=0.0,
        ) as service:
            job = service.run({"scenario": GEO1000_SMOKE}, timeout=600)
            assert job.state == "done"
            assert job.result["output"] == reference

    def test_gallery_file_smoke_runs(self, capsys):
        gallery = __file__.rsplit("/tests/", 1)[0] + "/scenarios"
        pytest.importorskip("yaml", reason="gallery scenarios are YAML")
        assert main(["scenario", "run", f"{gallery}/churn_tree.yaml", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "churn" in out
