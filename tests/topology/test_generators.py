"""Property-based tests (hypothesis) on the generated topologies.

These pin the generator contracts the scenario-diversity subsystem
rests on: the same seed always reproduces the same deployment (layout,
routing tree and rates), every node has a route to the sink no matter
how unlucky the draw (the retry-or-grow radius policy), and cluster
trees have exactly the shape their parameters promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    SINK,
    UNREACHABLE,
    ClusterTreeTopology,
    RandomGeometricTopology,
    auto_radius,
    depths_from_parents,
    validate_parents,
)

seeds = st.integers(0, 2**32 - 1)
sizes = st.integers(2, 60)


class TestRandomGeometricProperties:
    @given(sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_seed_determinism(self, n, seed):
        # Two fresh instances — nothing shared but the constructor args.
        a = RandomGeometricTopology(n, seed=seed)
        b = RandomGeometricTopology(n, seed=seed)
        assert np.array_equal(a.positions, b.positions)
        assert a.tree_parents() == b.tree_parents()
        assert a.effective_radius == b.effective_radius
        assert a.effective_rates(0.3) == b.effective_rates(0.3)

    @given(sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_always_sink_connected(self, n, seed):
        topo = RandomGeometricTopology(n, seed=seed)
        parents = topo.tree_parents()
        validate_parents(parents)
        assert UNREACHABLE not in parents
        assert all(d >= 1 for d in depths_from_parents(parents))

    @given(sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_traffic_conservation(self, n, seed):
        # Convergecast conservation: everything every node generates
        # arrives at the sink, so the sink-adjacent loads sum to n.
        topo = RandomGeometricTopology(n, seed=seed)
        parents = topo.tree_parents()
        rates = topo.effective_rates(1.0)
        delivered = sum(r for r, p in zip(rates, parents) if p == SINK)
        assert delivered == pytest.approx(n)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_tiny_radius_grows_until_connected(self, seed):
        # A hopeless radius must trigger the documented grow policy,
        # never an error or a disconnected tree.
        topo = RandomGeometricTopology(12, radius=1e-4, seed=seed)
        assert topo.effective_radius > 1e-4
        assert UNREACHABLE not in topo.tree_parents()

    def test_positions_in_unit_square(self):
        topo = RandomGeometricTopology(200, seed=7)
        assert np.all(topo.positions >= 0.0)
        assert np.all(topo.positions <= 1.0)

    def test_distinct_seeds_distinct_layouts(self):
        a = RandomGeometricTopology(30, seed=1)
        b = RandomGeometricTopology(30, seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_describe_names_the_deployment(self):
        text = RandomGeometricTopology(50, seed=3).describe()
        assert "50 nodes" in text
        assert "seed 3" in text

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            RandomGeometricTopology(0)
        with pytest.raises(ValueError):
            RandomGeometricTopology(10, radius=-0.5)

    def test_auto_radius_shrinks_with_density(self):
        assert auto_radius(1000) < auto_radius(100) < auto_radius(10)


class TestClusterTree:
    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_shape_matches_parameters(self, fanout, depth):
        topo = ClusterTreeTopology(fanout=fanout, depth=depth)
        assert topo.n_nodes == sum(fanout**k for k in range(1, depth + 1))
        parents = topo.tree_parents()
        validate_parents(parents)
        hist = {}
        for d in depths_from_parents(parents):
            hist[d] = hist.get(d, 0) + 1
        assert hist == {k: fanout**k for k in range(1, depth + 1)}

    def test_root_relays_its_whole_subtree(self):
        # fanout 3 / depth 3: each of the 3 cluster heads under the
        # sink relays a 13-node subtree (itself + 3 + 9).
        topo = ClusterTreeTopology(fanout=3, depth=3)
        rates = topo.effective_rates(1.0)
        assert rates[:3] == [13.0, 13.0, 13.0]
        assert rates[-1] == 1.0  # leaves relay nothing

    def test_deterministic_without_seed(self):
        a = ClusterTreeTopology(fanout=2, depth=3)
        b = ClusterTreeTopology(fanout=2, depth=3)
        assert a.tree_parents() == b.tree_parents()

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ClusterTreeTopology(fanout=0, depth=2)
        with pytest.raises(ValueError):
            ClusterTreeTopology(fanout=2, depth=0)
