"""Unit tests for power-state tables and the paper's parameter sets."""

import pytest

from repro.energy import (
    CC2420_RADIO_POWER_MW,
    IMOTE2_MEASURED_POWER_MW,
    PXA271_CPU_POWER_MW,
    PowerStateTable,
    cpu_power_table,
    imote2_power_table,
    radio_power_table,
)


class TestPaperParameterSets:
    def test_table_iii_cpu_values(self):
        assert PXA271_CPU_POWER_MW == {
            "standby": 17.0,
            "idle": 88.0,
            "powerup": 192.976,
            "active": 193.0,
        }

    def test_table_iii_radio_values(self):
        assert CC2420_RADIO_POWER_MW["standby"] == pytest.approx(1.44e-4)
        assert CC2420_RADIO_POWER_MW["active"] == 78.0

    def test_table_vii_values(self):
        assert IMOTE2_MEASURED_POWER_MW["wait"] == 1.216
        # the paper's counter-intuitive observation: TX < idle because
        # the idle radio is actively listening
        assert (
            IMOTE2_MEASURED_POWER_MW["transmitting"]
            < IMOTE2_MEASURED_POWER_MW["wait"]
        )

    def test_factory_functions(self):
        assert cpu_power_table().rate_mw("active") == 193.0
        assert radio_power_table().rate_mw("idle") == 0.712
        assert imote2_power_table().rate_mw("computation") == 1.253


class TestPowerStateTable:
    def table(self):
        return PowerStateTable("t", {"on": 100.0, "off": 10.0})

    def test_rates(self):
        t = self.table()
        assert t.rate_mw("on") == 100.0
        assert t.rate_w("on") == 0.1
        assert t.has_state("on")
        assert not t.has_state("nope")
        assert set(t.states) == {"on", "off"}

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PowerStateTable("bad", {"x": -1.0})

    def test_energy_from_dwell(self):
        t = self.table()
        # 100mW*2s + 10mW*10s = 300 mJ = 0.3 J
        assert t.energy_from_dwell_j({"on": 2.0, "off": 10.0}) == pytest.approx(0.3)

    def test_energy_from_dwell_unknown_state_raises(self):
        with pytest.raises(KeyError):
            self.table().energy_from_dwell_j({"ghost": 1.0})

    def test_energy_from_dwell_negative_rejected(self):
        with pytest.raises(ValueError):
            self.table().energy_from_dwell_j({"on": -1.0})

    def test_energy_from_probabilities(self):
        t = self.table()
        # mean power = 0.5*100 + 0.5*10 = 55 mW over 100 s -> 5.5 J
        e = t.energy_from_probabilities_j({"on": 0.5, "off": 0.5}, 100.0)
        assert e == pytest.approx(5.5)

    def test_probability_bounds_checked(self):
        with pytest.raises(ValueError):
            self.table().energy_from_probabilities_j({"on": 1.5}, 1.0)
        with pytest.raises(ValueError):
            self.table().energy_from_probabilities_j({"on": 0.5}, -1.0)

    def test_mean_power(self):
        assert self.table().mean_power_mw({"on": 0.25, "off": 0.75}) == pytest.approx(
            32.5
        )

    def test_scaled(self):
        t = self.table().scaled(2.0)
        assert t.rate_mw("on") == 200.0
        with pytest.raises(ValueError):
            self.table().scaled(-1.0)

    def test_str(self):
        assert "on=" in str(self.table())
