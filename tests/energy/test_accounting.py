"""Unit tests for energy accounting."""

import pytest

from repro.energy import EnergyAccount, NodeEnergyAccount, PowerStateTable


def table():
    return PowerStateTable("t", {"on": 100.0, "off": 10.0})


class TestEnergyAccount:
    def test_credit_and_energy(self):
        acc = EnergyAccount(table())
        acc.credit("on", 2.0)
        acc.credit("off", 10.0)
        assert acc.energy_j() == pytest.approx(0.3)
        assert acc.total_time() == pytest.approx(12.0)

    def test_credit_accumulates(self):
        acc = EnergyAccount(table())
        acc.credit("on", 1.0)
        acc.credit("on", 1.0)
        assert acc.dwell_s["on"] == pytest.approx(2.0)

    def test_credit_all(self):
        acc = EnergyAccount(table())
        acc.credit_all({"on": 1.0, "off": 2.0})
        assert acc.total_time() == pytest.approx(3.0)

    def test_unknown_state_rejected(self):
        acc = EnergyAccount(table())
        with pytest.raises(KeyError):
            acc.credit("ghost", 1.0)

    def test_negative_rejected(self):
        acc = EnergyAccount(table())
        with pytest.raises(ValueError):
            acc.credit("on", -1.0)

    def test_energy_by_state(self):
        acc = EnergyAccount(table())
        acc.credit("on", 2.0)
        assert acc.energy_by_state_j() == {"on": pytest.approx(0.2)}

    def test_mean_power(self):
        acc = EnergyAccount(table())
        acc.credit("on", 5.0)
        acc.credit("off", 5.0)
        assert acc.mean_power_mw() == pytest.approx(55.0)

    def test_fractions(self):
        acc = EnergyAccount(table())
        acc.credit("on", 3.0)
        acc.credit("off", 1.0)
        assert acc.fractions() == {
            "on": pytest.approx(0.75),
            "off": pytest.approx(0.25),
        }

    def test_empty_account(self):
        acc = EnergyAccount(table())
        assert acc.energy_j() == 0.0
        assert acc.mean_power_mw() == 0.0
        assert acc.fractions() == {}


class TestNodeEnergyAccount:
    def test_components_aggregate(self):
        node = NodeEnergyAccount()
        cpu = node.add_component("cpu", table())
        radio = node.add_component("radio", PowerStateTable("r", {"tx": 50.0}))
        cpu.credit("on", 10.0)
        radio.credit("tx", 2.0)
        assert node.total_energy_j() == pytest.approx(1.0 + 0.1)
        assert set(node.components) == {"cpu", "radio"}

    def test_duplicate_component_rejected(self):
        node = NodeEnergyAccount()
        node.add_component("cpu", table())
        with pytest.raises(ValueError):
            node.add_component("cpu", table())

    def test_breakdown_nested(self):
        node = NodeEnergyAccount()
        cpu = node.add_component("cpu", table())
        cpu.credit("on", 1.0)
        nested = node.breakdown_j()
        assert nested["cpu"]["on"] == pytest.approx(0.1)

    def test_component_results_immutable_rows(self):
        node = NodeEnergyAccount()
        cpu = node.add_component("cpu", table())
        cpu.credit("off", 1.0)
        rows = node.component_results()
        assert rows[0].component == "cpu"
        assert rows[0].energy_j == pytest.approx(0.01)

    def test_account_lookup(self):
        node = NodeEnergyAccount()
        acc = node.add_component("cpu", table())
        assert node.account("cpu") is acc
        with pytest.raises(KeyError):
            node.account("ghost")
