"""Unit tests for the Figs. 14/15 energy-component breakdown."""

import pytest

from repro.energy import (
    BREAKDOWN_CATEGORIES,
    CATEGORY_LABELS,
    EnergyBreakdown,
    categorize,
)


class TestCategorize:
    @pytest.mark.parametrize(
        "component,state,expected",
        [
            ("cpu", "powerup", "cpu_wakeup"),
            ("cpu", "active", "cpu_active"),
            ("cpu", "idle", "cpu_idle"),
            ("cpu", "standby", "cpu_sleep"),
            ("radio", "powerup", "radio_wakeup"),
            ("radio", "active", "radio_active"),
            ("Radio", "Standby", "radio_sleep"),  # case-insensitive
        ],
    )
    def test_mapping(self, component, state, expected):
        assert categorize(component, state) == expected

    def test_unknown_component(self):
        with pytest.raises(ValueError):
            categorize("gpu", "active")

    def test_unknown_state(self):
        with pytest.raises(ValueError):
            categorize("cpu", "hibernate")

    def test_all_categories_labelled(self):
        assert set(CATEGORY_LABELS) == set(BREAKDOWN_CATEGORIES)


class TestEnergyBreakdown:
    def test_defaults_fill_missing(self):
        b = EnergyBreakdown({"cpu_active": 1.0})
        assert b.get("radio_sleep") == 0.0
        assert b.total_j() == pytest.approx(1.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown({"gpu_active": 1.0})

    def test_from_component_states(self):
        b = EnergyBreakdown.from_component_states(
            {
                "cpu": {"active": 2.0, "powerup": 1.0},
                "radio": {"standby": 0.5},
            }
        )
        assert b.get("cpu_active") == 2.0
        assert b.get("cpu_wakeup") == 1.0
        assert b.get("radio_sleep") == 0.5
        assert b.total_j() == pytest.approx(3.5)

    def test_aggregates(self):
        b = EnergyBreakdown(
            {
                "cpu_wakeup": 1.0,
                "radio_wakeup": 0.5,
                "cpu_active": 2.0,
                "radio_active": 0.25,
            }
        )
        assert b.transitional_j() == pytest.approx(1.5)
        assert b.cpu_j() == pytest.approx(3.0)
        assert b.radio_j() == pytest.approx(0.75)

    def test_as_row_canonical_order(self):
        b = EnergyBreakdown({c: float(i) for i, c in enumerate(BREAKDOWN_CATEGORIES)})
        assert b.as_row() == tuple(float(i) for i in range(len(BREAKDOWN_CATEGORIES)))

    def test_get_typo_raises(self):
        b = EnergyBreakdown({})
        with pytest.raises(KeyError):
            b.get("cpu_wake")  # typo for cpu_wakeup

    def test_str(self):
        assert "total=" in str(EnergyBreakdown({"cpu_idle": 1.0}))
