"""Unit tests for report rendering."""

import pytest

from repro.energy import (
    EnergyBreakdown,
    format_breakdown_sweep,
    format_energy_series,
    format_state_percentages,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_precision(self):
        text = format_table(["x"], [[1.23456789]], precision=3)
        assert "1.23" in text
        assert "1.2345" not in text


class TestSeriesFormatters:
    def test_state_percentages(self):
        text = format_state_percentages(
            [0.1, 0.2],
            {"Idle": [0.5, 0.6], "Active": [0.1, 0.1]},
            title="Fig 4",
        )
        assert "Fig 4" in text
        assert "Idle %" in text
        assert "50" in text  # converted to percent

    def test_energy_series(self):
        text = format_energy_series(
            [0.1], {"Simulation": [12.5], "Markov": [13.0]}, title="Fig 7"
        )
        assert "Simulation (J)" in text
        assert "12.5" in text

    def test_breakdown_sweep(self):
        b = EnergyBreakdown({"cpu_active": 1.0})
        text = format_breakdown_sweep([0.01], [b], title="Fig 14")
        assert "CPU Active" in text
        assert "Total (J)" in text

    def test_breakdown_length_mismatch(self):
        with pytest.raises(ValueError):
            format_breakdown_sweep([0.01, 0.02], [EnergyBreakdown({})], "t")
