"""Unit tests for battery and lifetime models."""

import math

import pytest

from repro.energy import (
    IMOTE2_3xAAA,
    LinearBattery,
    NodeLifetimeEstimator,
    PeukertBattery,
)


class TestLinearBattery:
    def test_usable_energy(self):
        b = LinearBattery(1000.0, 3.0)
        # 1 Ah * 3 V = 3 Wh = 10800 J
        assert b.usable_energy_j() == pytest.approx(10800.0)

    def test_usable_fraction(self):
        b = LinearBattery(1000.0, 3.0, usable_fraction=0.5)
        assert b.usable_energy_j() == pytest.approx(5400.0)

    def test_lifetime_scales_inversely_with_power(self):
        b = LinearBattery(1000.0, 3.0)
        assert b.lifetime_s(2.0) == pytest.approx(b.lifetime_s(1.0) / 2)

    def test_zero_power_infinite_life(self):
        assert LinearBattery(1.0, 1.0).lifetime_s(0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearBattery(0.0, 3.0)
        with pytest.raises(ValueError):
            LinearBattery(1.0, 3.0, usable_fraction=0.0)
        with pytest.raises(ValueError):
            LinearBattery(1.0, 3.0, usable_fraction=1.5)

    def test_imote2_preset(self):
        # 1000 mAh * 0.85 * 4.5 V = 3.825 Wh = 13770 J
        assert IMOTE2_3xAAA.usable_energy_j() == pytest.approx(13770.0)


class TestPeukertBattery:
    def test_exponent_one_matches_linear(self):
        pk = PeukertBattery(1000.0, 3.0, peukert_exponent=1.0, rated_hours=20.0)
        lin = LinearBattery(1000.0, 3.0)
        for p in (0.5, 5.0, 50.0):
            assert pk.lifetime_s(p) == pytest.approx(lin.lifetime_s(p), rel=1e-9)

    def test_high_draw_penalised(self):
        pk = PeukertBattery(1000.0, 3.0, peukert_exponent=1.2, rated_hours=20.0)
        lin = LinearBattery(1000.0, 3.0)
        rated_power_mw = 1000.0 / 20.0 * 3.0  # draw at the 20h rate
        # above rated draw: Peukert life < linear life
        assert pk.lifetime_s(10 * rated_power_mw) < lin.lifetime_s(10 * rated_power_mw)
        # below rated draw: Peukert life > linear life
        assert pk.lifetime_s(rated_power_mw / 10) > lin.lifetime_s(rated_power_mw / 10)

    def test_at_rated_draw_equal(self):
        pk = PeukertBattery(1000.0, 3.0, peukert_exponent=1.3, rated_hours=20.0)
        rated_power_mw = 1000.0 / 20.0 * 3.0
        assert pk.lifetime_s(rated_power_mw) == pytest.approx(20 * 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeukertBattery(1000.0, 3.0, peukert_exponent=0.9)
        with pytest.raises(ValueError):
            PeukertBattery(1000.0, 3.0, rated_hours=0.0)

    def test_usable_energy_depends_on_draw(self):
        pk = PeukertBattery(1000.0, 3.0, peukert_exponent=1.2)
        assert pk.usable_energy_j(100.0) < pk.usable_energy_j(1.0)


class TestNodeLifetimeEstimator:
    def test_days_conversion(self):
        est = NodeLifetimeEstimator(LinearBattery(1000.0, 3.0))
        assert est.lifetime_days(1.0) == pytest.approx(
            est.lifetime_s(1.0) / 86400.0
        )

    def test_from_energy(self):
        est = NodeLifetimeEstimator(LinearBattery(1000.0, 3.0))
        # 9 J over 900 s -> 10 mW
        assert est.lifetime_from_energy(9.0, 900.0) == pytest.approx(
            est.lifetime_days(10.0)
        )
        with pytest.raises(ValueError):
            est.lifetime_from_energy(1.0, 0.0)

    def test_lifetime_table(self):
        est = NodeLifetimeEstimator(LinearBattery(1000.0, 3.0))
        rows = est.lifetime_table_days([0.1, 0.2], [9.0, 18.0], 900.0)
        assert len(rows) == 2
        assert rows[0][1] == pytest.approx(2 * rows[1][1])
        with pytest.raises(ValueError):
            est.lifetime_table_days([0.1], [1.0, 2.0], 900.0)

    def test_lower_threshold_energy_means_longer_life(self):
        # The point of the whole exercise: the Fig. 14 optimum maps to
        # the longest deployment.
        est = NodeLifetimeEstimator(IMOTE2_3xAAA)
        life_opt = est.lifetime_from_energy(68.6, 900.0)
        life_bad = est.lifetime_from_energy(99.4, 900.0)
        assert life_opt > life_bad
